#include "dataset/profile.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace sophon::dataset {

namespace {

/// Common photo aspect ratios with rough prevalence weights; orientation is
/// flipped with probability 0.35 (portrait shots are the minority).
constexpr std::array<double, 5> kAspects{4.0 / 3.0, 3.0 / 2.0, 16.0 / 9.0, 1.0, 5.0 / 4.0};
constexpr std::array<double, 5> kAspectWeights{0.40, 0.30, 0.15, 0.08, 0.07};

double pick_aspect(Rng& rng) {
  const double u = rng.uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < kAspects.size(); ++i) {
    acc += kAspectWeights[i];
    if (u < acc) return kAspects[i];
  }
  return kAspects.back();
}

const ProfileComponent& pick_component(const DatasetProfile& profile, Rng& rng) {
  SOPHON_CHECK(!profile.components.empty());
  double total = 0.0;
  for (const auto& c : profile.components) total += c.weight;
  double u = rng.uniform() * total;
  for (const auto& c : profile.components) {
    u -= c.weight;
    if (u < 0.0) return c;
  }
  return profile.components.back();
}

}  // namespace

SampleMeta draw_sample(const DatasetProfile& profile, std::uint64_t seed, std::uint64_t id) {
  Rng rng(derive_seed(derive_seed(seed, profile.name), id));
  const auto& comp = pick_component(profile, rng);

  double pixels = rng.lognormal(std::log(comp.median_pixels), comp.sigma_pixels);
  pixels = std::clamp(pixels, profile.min_pixels, profile.max_pixels);
  double bpp = rng.lognormal(std::log(comp.median_bpp), comp.sigma_bpp);
  bpp = std::clamp(bpp, profile.min_bpp, profile.max_bpp);

  double aspect = pick_aspect(rng);
  if (rng.bernoulli(0.35)) aspect = 1.0 / aspect;

  int width = std::max(64, static_cast<int>(std::lround(std::sqrt(pixels * aspect))));
  int height = std::max(64, static_cast<int>(std::lround(static_cast<double>(width) / aspect)));
  width = std::min(width, 0xffff);
  height = std::min(height, 0xffff);

  const auto actual_pixels = static_cast<double>(width) * height;
  const auto encoded =
      std::max<std::int64_t>(256, static_cast<std::int64_t>(actual_pixels * bpp / 8.0));

  SampleMeta meta;
  meta.id = id;
  meta.raw = pipeline::SampleShape::encoded(Bytes(encoded), width, height, 3);
  // Map bpp onto texture: ~0.3 bpp is an almost flat image, ~8 bpp is noise.
  meta.texture = std::clamp((std::log(bpp) - std::log(profile.min_bpp)) /
                                (std::log(profile.max_bpp) - std::log(profile.min_bpp)),
                            0.0, 1.0);
  return meta;
}

DatasetProfile openimages_profile(std::size_t num_samples) {
  DatasetProfile p;
  p.name = "openimages";
  p.num_samples = num_samples;
  // Single broad component: large, high-quality photographs.
  // median pixels 1.98 MP (sigma 0.55), median 1.0 bpp (sigma 0.44)
  // → median encoded ≈ 247 KB, mean ≈ 317 KB, P(>147 KB) ≈ 0.76.
  p.components = {{1.0, 1.98e6, 0.55, 1.0, 0.44}};
  // SJPG (predictive coding, no transform) needs ~2-3x the rate of DCT JPEG
  // for the same content; materialise at a moderate quality so real blob
  // sizes stay in the same regime as the parametric (JPEG-like) sizes.
  p.quality = 55;
  return p;
}

DatasetProfile imagenet_profile(std::size_t num_samples) {
  DatasetProfile p;
  p.name = "imagenet";
  p.num_samples = num_samples;
  // Two components: the bulk of ImageNet is ~0.2 MP thumbnails with high
  // per-pixel rates; a quarter are larger photographs.
  //   small: median encoded ≈ 59 KB  (74 %)
  //   large: median encoded ≈ 255 KB (26 %)
  // → mean ≈ 122 KB, P(>147 KB) ≈ 0.25.
  p.components = {
      {0.74, 1.9e5, 0.30, 2.5, 0.33},
      {0.26, 1.3e6, 0.35, 1.57, 0.28},
  };
  p.quality = 60;
  return p;
}

}  // namespace sophon::dataset
