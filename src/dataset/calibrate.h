// Native cost-model calibration.
//
// The deterministic CostModel ships with coefficients calibrated to the
// paper's testbed; on different hardware the *relative* results hold but
// absolute seconds drift. This module measures real wall-clock per-op times
// over a set of materialised samples and fits fresh coefficients by least
// squares, so `CostModel(calibrate(...).coefficients)` predicts the machine
// it ran on. (The paper's stage-2 profiler measures per-sample times the
// same way; fitting a parametric model on top is what lets the simulator
// extrapolate to samples it never executed.)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dataset/profile.h"
#include "pipeline/cost_model.h"
#include "pipeline/pipeline.h"

namespace sophon::dataset {

struct CalibrationOptions {
  /// Wall-clock repetitions per (op, sample); the minimum is kept, which
  /// rejects scheduler noise.
  int repeats = 3;
  int quality = 70;        // SJPG quality used to materialise the samples
  std::uint64_t seed = 42;
};

struct CalibrationObservation {
  pipeline::OpKind op;
  pipeline::SampleShape input;
  Seconds measured;   // best-of-repeats wall clock
  Seconds predicted;  // under the fitted coefficients
};

struct CalibrationResult {
  pipeline::CostCoefficients coefficients;
  std::vector<CalibrationObservation> observations;

  /// Median of |predicted - measured| / measured across observations — how
  /// well the fitted model explains the measurements it was fitted on.
  [[nodiscard]] double median_relative_error() const;
};

/// Materialise each sample, execute every pipeline op for real under a
/// timer, and fit the cost-model coefficients. `samples` should span a
/// range of dimensions/textures (a handful from each profile is plenty).
[[nodiscard]] CalibrationResult calibrate_cost_model(std::span<const SampleMeta> samples,
                                                     const CalibrationOptions& options = {});

}  // namespace sophon::dataset
