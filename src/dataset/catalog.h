// The dataset catalog: static per-sample metadata for a whole corpus.
//
// Two construction paths mirror the two fidelity levels in DESIGN.md:
//   * `generate`   — parametric: metadata drawn straight from a profile
//     (used for 40 k–90 k sample simulation runs),
//   * `from_blobs` — materialised: metadata recovered from real SJPG blobs
//     (used by the end-to-end examples and cross-validation tests).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dataset/profile.h"
#include "util/units.h"

namespace sophon::dataset {

class Catalog {
 public:
  Catalog() = default;

  /// Draw `profile.num_samples` sample records deterministically.
  static Catalog generate(const DatasetProfile& profile, std::uint64_t seed);

  /// Build a catalog from real encoded blobs (peeks each SJPG header).
  /// Texture is unknown for real blobs and left at its default.
  static Catalog from_blobs(std::span<const std::vector<std::uint8_t>> blobs);

  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] const SampleMeta& sample(std::size_t index) const;
  [[nodiscard]] const std::vector<SampleMeta>& samples() const { return samples_; }

  /// Sum of raw encoded sizes — the dataset's at-rest footprint and the
  /// per-epoch traffic of the No-Off policy.
  [[nodiscard]] Bytes total_encoded() const { return total_encoded_; }

  /// Mean raw encoded size.
  [[nodiscard]] Bytes mean_encoded() const;

  /// Fraction of samples whose raw size exceeds `threshold` — with the
  /// threshold at the post-crop wire size this is the paper's "fraction of
  /// samples that benefit from offloading".
  [[nodiscard]] double fraction_larger_than(Bytes threshold) const;

 private:
  std::vector<SampleMeta> samples_;
  Bytes total_encoded_;
};

}  // namespace sophon::dataset
