#include "dataset/catalog.h"

#include "codec/sjpg.h"
#include "util/check.h"

namespace sophon::dataset {

Catalog Catalog::generate(const DatasetProfile& profile, std::uint64_t seed) {
  SOPHON_CHECK(profile.num_samples > 0);
  Catalog catalog;
  catalog.samples_.reserve(profile.num_samples);
  for (std::uint64_t id = 0; id < profile.num_samples; ++id) {
    auto meta = draw_sample(profile, seed, id);
    catalog.total_encoded_ += meta.raw.bytes;
    catalog.samples_.push_back(std::move(meta));
  }
  return catalog;
}

Catalog Catalog::from_blobs(std::span<const std::vector<std::uint8_t>> blobs) {
  Catalog catalog;
  catalog.samples_.reserve(blobs.size());
  for (std::size_t i = 0; i < blobs.size(); ++i) {
    const auto hdr = codec::sjpg_peek(blobs[i]);
    SOPHON_CHECK_MSG(hdr.has_value(), "blob is not a valid SJPG stream");
    SampleMeta meta;
    meta.id = i;
    meta.raw = pipeline::SampleShape::encoded(Bytes(static_cast<std::int64_t>(blobs[i].size())),
                                              hdr->width, hdr->height, hdr->channels);
    catalog.total_encoded_ += meta.raw.bytes;
    catalog.samples_.push_back(meta);
  }
  return catalog;
}

const SampleMeta& Catalog::sample(std::size_t index) const {
  SOPHON_CHECK(index < samples_.size());
  return samples_[index];
}

Bytes Catalog::mean_encoded() const {
  if (samples_.empty()) return Bytes(0);
  return Bytes(total_encoded_.count() / static_cast<std::int64_t>(samples_.size()));
}

double Catalog::fraction_larger_than(Bytes threshold) const {
  if (samples_.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& s : samples_)
    if (s.raw.bytes > threshold) ++n;
  return static_cast<double>(n) / static_cast<double>(samples_.size());
}

}  // namespace sophon::dataset
