#include "dataset/calibrate.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "dataset/synth.h"
#include "util/check.h"
#include "util/stats.h"

namespace sophon::dataset {

namespace {

using Clock = std::chrono::steady_clock;

/// Best-of-N wall clock of a callable producing a value we must not let the
/// optimiser discard.
template <typename Fn>
Seconds time_best_of(int repeats, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto start = Clock::now();
    auto result = fn();
    const auto elapsed = std::chrono::duration<double>(Clock::now() - start).count();
    best = std::min(best, elapsed);
    // Touch the result so the work cannot be elided.
    SOPHON_CHECK(pipeline::sample_byte_size(result).count() >= 0);
  }
  return Seconds(best);
}

/// Least-squares fit of y ≈ a*x (single positive coefficient through the
/// origin): a = Σxy / Σx².
double fit_through_origin(const std::vector<std::pair<double, double>>& xy) {
  double num = 0.0;
  double den = 0.0;
  for (const auto& [x, y] : xy) {
    num += x * y;
    den += x * x;
  }
  SOPHON_CHECK(den > 0.0);
  return std::max(num / den, 1e-12);  // keep strictly positive
}

/// Least-squares fit of y ≈ a*x1 + b*x2 via the 2x2 normal equations,
/// clamped to non-negative coefficients (falling back to single-variable
/// fits when the unconstrained solution goes negative).
std::pair<double, double> fit_two(const std::vector<std::array<double, 3>>& rows) {
  double s11 = 0.0;
  double s12 = 0.0;
  double s22 = 0.0;
  double s1y = 0.0;
  double s2y = 0.0;
  for (const auto& [x1, x2, y] : rows) {
    s11 += x1 * x1;
    s12 += x1 * x2;
    s22 += x2 * x2;
    s1y += x1 * y;
    s2y += x2 * y;
  }
  const double det = s11 * s22 - s12 * s12;
  double a = 0.0;
  double b = 0.0;
  if (std::abs(det) > 1e-30) {
    a = (s1y * s22 - s2y * s12) / det;
    b = (s2y * s11 - s1y * s12) / det;
  }
  if (a <= 0.0 || b <= 0.0 || std::abs(det) <= 1e-30) {
    // Degenerate or negative: fit each variable alone and keep the better.
    std::vector<std::pair<double, double>> x1y;
    std::vector<std::pair<double, double>> x2y;
    for (const auto& [x1, x2, y] : rows) {
      x1y.emplace_back(x1, y);
      x2y.emplace_back(x2, y);
    }
    a = fit_through_origin(x1y) / 2.0;
    b = fit_through_origin(x2y) / 2.0;
  }
  return {std::max(a, 1e-12), std::max(b, 1e-12)};
}

}  // namespace

double CalibrationResult::median_relative_error() const {
  SOPHON_CHECK(!observations.empty());
  std::vector<double> errors;
  errors.reserve(observations.size());
  for (const auto& obs : observations) {
    if (obs.measured.value() <= 0.0) continue;
    errors.push_back(std::abs(obs.predicted.value() - obs.measured.value()) /
                     obs.measured.value());
  }
  SOPHON_CHECK(!errors.empty());
  return median(std::move(errors));
}

CalibrationResult calibrate_cost_model(std::span<const SampleMeta> samples,
                                       const CalibrationOptions& options) {
  SOPHON_CHECK(samples.size() >= 2);
  SOPHON_CHECK(options.repeats >= 1);
  const auto pipe = pipeline::Pipeline::standard();

  struct Raw {
    pipeline::OpKind op;
    pipeline::SampleShape input;
    Seconds measured;
  };
  std::vector<Raw> raw;

  // (x1=bytes, x2=pixels, y=seconds) rows for the decode fit; single-factor
  // rows for the others.
  std::vector<std::array<double, 3>> decode_rows;
  std::vector<std::array<double, 3>> rrc_rows;  // x1=src px read, x2=out px
  std::vector<std::pair<double, double>> flip_rows;
  std::vector<std::pair<double, double>> tensor_rows;
  std::vector<std::pair<double, double>> norm_rows;

  constexpr double kCropFraction = 0.54;  // matches CostCoefficients

  for (const auto& meta : samples) {
    const auto blob = materialize_encoded(meta, options.seed, options.quality);
    const auto raw_shape = pipeline::SampleShape::encoded(
        Bytes(static_cast<std::int64_t>(blob.size())), meta.raw.width, meta.raw.height, 3);

    pipeline::SampleData data = pipeline::EncodedBlob{blob};
    for (std::size_t op_index = 0; op_index < pipe.size(); ++op_index) {
      const auto input_shape = pipeline::shape_of(data) ;
      // shape_of loses encoded dims; rebuild from raw_shape for stage 0.
      const auto in = op_index == 0 ? raw_shape : input_shape;
      const auto t = time_best_of(options.repeats, [&] {
        Rng rng(derive_seed(options.seed, op_index));
        return pipe.op(op_index).apply(data, rng);
      });
      raw.push_back({pipe.op(op_index).kind(), in, t});

      switch (pipe.op(op_index).kind()) {
        case pipeline::OpKind::kDecode:
          decode_rows.push_back({in.bytes.as_double(),
                                 static_cast<double>(in.pixel_count()), t.value()});
          break;
        case pipeline::OpKind::kRandomResizedCrop:
          rrc_rows.push_back({static_cast<double>(in.pixel_count()) * kCropFraction,
                              224.0 * 224.0, t.value()});
          break;
        case pipeline::OpKind::kRandomHorizontalFlip:
          flip_rows.emplace_back(static_cast<double>(in.pixel_count()) * in.channels,
                                 t.value());
          break;
        case pipeline::OpKind::kToTensor:
          tensor_rows.emplace_back(static_cast<double>(in.pixel_count()) * in.channels,
                                   t.value());
          break;
        case pipeline::OpKind::kNormalize:
          norm_rows.emplace_back(static_cast<double>(in.pixel_count()) * in.channels,
                                 t.value());
          break;
      }
      // Advance with the seeded stream so shapes follow the real pipeline.
      Rng rng(derive_seed(options.seed, op_index));
      data = pipe.op(op_index).apply(std::move(data), rng);
    }
  }

  CalibrationResult result;
  auto& coeffs = result.coefficients;
  const auto [dec_a, dec_b] = fit_two(decode_rows);
  coeffs.decode_ns_per_byte = dec_a * 1e9;
  coeffs.decode_ns_per_pixel = dec_b * 1e9;
  const auto [crop_a, resize_b] = fit_two(rrc_rows);
  coeffs.crop_ns_per_src_pixel = crop_a * 1e9;
  coeffs.resize_ns_per_out_pixel = resize_b * 1e9;
  coeffs.expected_crop_area_fraction = kCropFraction;
  coeffs.flip_ns_per_pixel = fit_through_origin(flip_rows) * 1e9;
  coeffs.to_tensor_ns_per_element = fit_through_origin(tensor_rows) * 1e9;
  coeffs.normalize_ns_per_element = fit_through_origin(norm_rows) * 1e9;
  coeffs.per_op_overhead_ns = 0.0;  // native execution has no Python layer

  // Predictions under the fitted model for the error report.
  const pipeline::CostModel model(coeffs);
  result.observations.reserve(raw.size());
  for (const auto& r : raw) {
    CalibrationObservation obs;
    obs.op = r.op;
    obs.input = r.input;
    obs.measured = r.measured;
    switch (r.op) {
      case pipeline::OpKind::kDecode:
        obs.predicted = model.decode_cost(r.input);
        break;
      case pipeline::OpKind::kRandomResizedCrop:
        obs.predicted = model.resized_crop_cost(r.input, 224);
        break;
      case pipeline::OpKind::kRandomHorizontalFlip:
        obs.predicted = model.flip_cost(r.input);
        break;
      case pipeline::OpKind::kToTensor:
        obs.predicted = model.to_tensor_cost(r.input);
        break;
      case pipeline::OpKind::kNormalize:
        obs.predicted = model.normalize_cost(r.input);
        break;
    }
    result.observations.push_back(obs);
  }
  return result;
}

}  // namespace sophon::dataset
