// Epoch ordering and batching, mirroring a PyTorch DataLoader with
// shuffle=true: every epoch visits every sample exactly once in a fresh
// deterministic shuffle.
#pragma once

#include <cstdint>
#include <vector>

namespace sophon::dataset {

/// The visit order of one epoch — a seeded Fisher–Yates shuffle of
/// [0, num_samples). Distinct epochs get independent permutations.
class EpochOrder {
 public:
  EpochOrder(std::size_t num_samples, std::uint64_t seed, std::size_t epoch);

  [[nodiscard]] const std::vector<std::uint32_t>& order() const { return order_; }
  [[nodiscard]] std::size_t size() const { return order_.size(); }
  [[nodiscard]] std::uint32_t at(std::size_t position) const;

 private:
  std::vector<std::uint32_t> order_;
};

/// Half-open range of positions within an epoch forming one batch.
struct BatchRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const { return end - begin; }
};

/// Split an epoch of `num_samples` into batches of `batch_size` (the final
/// batch may be short, as with drop_last=false).
[[nodiscard]] std::vector<BatchRange> make_batches(std::size_t num_samples,
                                                   std::size_t batch_size);

}  // namespace sophon::dataset
