#include "dataset/synth.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "codec/sjpg.h"
#include "util/check.h"

namespace sophon::dataset {

namespace {

struct Wave {
  double fx;
  double fy;
  double phase;
  double amplitude;
};

struct Blob {
  double cx;
  double cy;
  double radius;
  std::array<double, 3> color;
};

}  // namespace

image::Image generate_synthetic_image(const SampleMeta& meta, std::uint64_t seed) {
  const int w = meta.raw.width;
  const int h = meta.raw.height;
  SOPHON_CHECK(w > 0 && h > 0);
  Rng rng(derive_seed(derive_seed(seed, "synth"), meta.id));

  // Base gradient endpoints per channel.
  std::array<double, 3> lo{};
  std::array<double, 3> hi{};
  for (int c = 0; c < 3; ++c) {
    lo[static_cast<std::size_t>(c)] = rng.uniform(40.0, 140.0);
    hi[static_cast<std::size_t>(c)] = rng.uniform(90.0, 220.0);
  }
  const double grad_angle = rng.uniform(0.0, 6.28318530717958647692);
  const double gx = std::cos(grad_angle);
  const double gy = std::sin(grad_angle);

  // Plasma waves: frequency rises with texture.
  const int wave_count = 2 + static_cast<int>(meta.texture * 4.0);
  std::vector<Wave> waves;
  waves.reserve(static_cast<std::size_t>(wave_count));
  for (int i = 0; i < wave_count; ++i) {
    const double freq_scale = 2.0 + meta.texture * 22.0;
    waves.push_back({rng.uniform(0.5, freq_scale), rng.uniform(0.5, freq_scale),
                     rng.uniform(0.0, 6.28318530717958647692), rng.uniform(6.0, 22.0)});
  }

  // A few soft blobs give the image large-scale structure.
  const int blob_count = static_cast<int>(rng.uniform_int(2, 5));
  std::vector<Blob> blobs;
  blobs.reserve(static_cast<std::size_t>(blob_count));
  for (int i = 0; i < blob_count; ++i) {
    blobs.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0), rng.uniform(0.08, 0.35),
                     {rng.uniform(-40.0, 40.0), rng.uniform(-40.0, 40.0), rng.uniform(-40.0, 40.0)}});
  }

  const double noise_amp = 1.5 + 90.0 * meta.texture * meta.texture;

  image::Image img(w, h, 3);
  auto& pixels = img.data();
  std::size_t idx = 0;
  for (int y = 0; y < h; ++y) {
    const double v = static_cast<double>(y) / h;
    for (int x = 0; x < w; ++x) {
      const double u = static_cast<double>(x) / w;
      const double t = std::clamp(0.5 + 0.5 * (gx * (u - 0.5) + gy * (v - 0.5)) * 2.0, 0.0, 1.0);

      double structure = 0.0;
      for (const auto& wave : waves) {
        structure +=
            wave.amplitude * std::sin(wave.fx * u * 6.28318530717958647692 +
                                      wave.fy * v * 6.28318530717958647692 + wave.phase);
      }
      std::array<double, 3> blob_delta{};
      for (const auto& blob : blobs) {
        const double dx = u - blob.cx;
        const double dy = v - blob.cy;
        const double d2 = dx * dx + dy * dy;
        const double falloff = std::exp(-d2 / (2.0 * blob.radius * blob.radius));
        for (int c = 0; c < 3; ++c)
          blob_delta[static_cast<std::size_t>(c)] += blob.color[static_cast<std::size_t>(c)] * falloff;
      }

      for (int c = 0; c < 3; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        const double base = lo[ci] + (hi[ci] - lo[ci]) * t;
        const double noise = noise_amp * (rng.uniform() - 0.5);
        const double value = base + structure + blob_delta[ci] + noise;
        pixels[idx++] = static_cast<std::uint8_t>(std::clamp(value, 0.0, 255.0));
      }
    }
  }
  return img;
}

std::vector<std::uint8_t> materialize_encoded(const SampleMeta& meta, std::uint64_t seed,
                                              int quality) {
  return codec::sjpg_encode(generate_synthetic_image(meta, seed), quality);
}

}  // namespace sophon::dataset
