// Synthetic photograph generator.
//
// Materialised datasets need real pixel content whose compressed size varies
// with a controllable "texture" parameter: smooth renderings stand in for
// clean photographs (high compression), noisy ones for detailed textures
// (low compression). The generator composes a colour gradient, a handful of
// low-frequency plasma waves, soft blobs, and white noise whose amplitude
// grows with `texture` — deterministic per (seed, sample id).
#pragma once

#include <cstdint>
#include <vector>

#include "dataset/profile.h"
#include "image/image.h"

namespace sophon::dataset {

/// Render the synthetic image described by `meta`. Deterministic.
[[nodiscard]] image::Image generate_synthetic_image(const SampleMeta& meta, std::uint64_t seed);

/// Render and SJPG-encode at the given quality. Deterministic.
[[nodiscard]] std::vector<std::uint8_t> materialize_encoded(const SampleMeta& meta,
                                                            std::uint64_t seed, int quality);

}  // namespace sophon::dataset
