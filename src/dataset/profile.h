// Dataset profiles: parametric models of the two corpora the paper
// evaluates on.
//
// The paper uses a 12 GB subset of OpenImages (>40 k images, large files —
// 76 % shrink below the post-crop wire size) and an 11 GB subset of ImageNet
// (smaller files — only 26 % shrink). We model each corpus as a mixture of
// lognormal components over (pixel count, compressed bits-per-pixel); the
// component parameters are calibrated so the derived aggregate statistics
// match the paper:
//   OpenImages-like: mean encoded ≈ 317 KB  → All-Off/No-Off traffic ≈ 1.9x,
//                    P(encoded > 147 KB) ≈ 0.76.
//   ImageNet-like:   mean encoded ≈ 120 KB  → All-Off/No-Off traffic ≈ 5x,
//                    P(encoded > 147 KB) ≈ 0.25.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pipeline/sample.h"
#include "util/rng.h"

namespace sophon::dataset {

/// One lognormal mixture component over image geometry and compressibility.
struct ProfileComponent {
  double weight = 1.0;          // mixture weight (normalised at sampling)
  double median_pixels = 2e6;   // median pixel count of this component
  double sigma_pixels = 0.5;    // lognormal sigma of pixel count
  double median_bpp = 1.0;      // median compressed bits per pixel
  double sigma_bpp = 0.4;       // lognormal sigma of bpp
};

/// A full dataset profile: mixture + hard clamps + codec quality.
struct DatasetProfile {
  std::string name;
  std::size_t num_samples = 0;
  std::vector<ProfileComponent> components;
  double min_pixels = 5e4;
  double max_pixels = 3e7;
  double min_bpp = 0.3;
  double max_bpp = 8.0;
  int quality = 85;  // SJPG quality used when materialising
};

/// Static metadata for one sample drawn from a profile. `texture` in [0,1]
/// controls the synthetic image content (0 = smooth, 1 = noisy) and is
/// derived from the drawn bpp so that materialised blobs compress roughly
/// like the parametric size says they should.
struct SampleMeta {
  std::uint64_t id = 0;
  pipeline::SampleShape raw;  // encoded size + source dimensions
  double texture = 0.5;
};

/// Draw one sample's metadata. Deterministic given (profile, seed, id).
[[nodiscard]] SampleMeta draw_sample(const DatasetProfile& profile, std::uint64_t seed,
                                     std::uint64_t id);

/// The OpenImages-like corpus: 40 000 large images, ~12.7 GB total.
[[nodiscard]] DatasetProfile openimages_profile(std::size_t num_samples = 40000);

/// The ImageNet-like corpus: 90 000 mostly-small images, ~10.6 GB total.
[[nodiscard]] DatasetProfile imagenet_profile(std::size_t num_samples = 90000);

}  // namespace sophon::dataset
