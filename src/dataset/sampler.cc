#include "dataset/sampler.h"

#include <numeric>

#include "util/check.h"
#include "util/rng.h"

namespace sophon::dataset {

EpochOrder::EpochOrder(std::size_t num_samples, std::uint64_t seed, std::size_t epoch) {
  order_.resize(num_samples);
  std::iota(order_.begin(), order_.end(), 0u);
  Rng rng(derive_seed(derive_seed(seed, "epoch-order"), epoch));
  // Fisher–Yates, back to front.
  for (std::size_t i = num_samples; i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(order_[i - 1], order_[j]);
  }
}

std::uint32_t EpochOrder::at(std::size_t position) const {
  SOPHON_CHECK(position < order_.size());
  return order_[position];
}

std::vector<BatchRange> make_batches(std::size_t num_samples, std::size_t batch_size) {
  SOPHON_CHECK(batch_size > 0);
  std::vector<BatchRange> batches;
  batches.reserve((num_samples + batch_size - 1) / batch_size);
  for (std::size_t begin = 0; begin < num_samples; begin += batch_size) {
    batches.push_back({begin, std::min(begin + batch_size, num_samples)});
  }
  return batches;
}

}  // namespace sophon::dataset
