// Multi-worker data loader over the real fetch path.
//
// The compute-node counterpart of a PyTorch DataLoader: worker threads walk
// one epoch's shuffled order, fetch each sample from the storage service
// (carrying its offload directive), finish the remaining pipeline ops
// locally, and hand ready tensors to the training loop through a bounded
// queue. Augmentation uses the shared (seed, epoch, sample) streams, so the
// produced tensors are bit-identical to single-threaded execution — worker
// count only changes delivery order, never content.
//
// Failure handling: when a fetch throws net::FetchError (after the
// resilience layer's retries, if one is wired in), the worker degrades
// gracefully — it demotes the sample's offload directive to "raw bytes, full
// local pipeline" and re-fetches, so a struggling storage-side preprocessing
// engine costs traffic savings instead of stalling the epoch. Degraded
// samples are still bit-identical (cut-invariant augmentation). Only when
// the raw fetch also fails does the loader stop; the error then surfaces as
// an exception from next() instead of a wedged worker thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/plan.h"
#include "image/tensor.h"
#include "net/rpc.h"
#include "pipeline/pipeline.h"
#include "prefetch/scheduler.h"
#include "util/telemetry.h"

namespace sophon::loader {

/// One fully preprocessed sample, ready for the GPU.
struct LoadedSample {
  std::uint64_t sample_id = 0;
  std::size_t position = 0;  // index within the epoch's visit order
  image::Tensor tensor;
  Bytes wire_bytes;  // what its fetch cost on the link
  bool degraded = false;  // fetched raw after its offloaded fetch failed
};

class DataLoader {
 public:
  struct Options {
    std::size_t num_workers = 4;
    std::size_t queue_capacity = 64;
    std::uint64_t seed = 0;   // must match the storage server's seed
    std::size_t epoch = 0;
    /// When nonzero, ask the server to SJPG-compress offloaded image
    /// payloads at this quality (§6 extension; lossy).
    std::uint8_t compress_quality = 0;
    /// Deliver samples in epoch-position order (a reorder buffer holds
    /// early-finished samples; the buffer may briefly exceed
    /// queue_capacity to guarantee progress). Default: completion order.
    bool ordered = false;
    /// On a failed offloaded fetch, retry the sample with a raw directive
    /// (prefix 0, no compression) before giving up on the epoch.
    bool degrade_on_failure = true;
    /// Optional telemetry: reports sophon_degraded_samples and
    /// sophon_loader_fetch_errors counters plus the reorder buffer's
    /// high-water gauge; with prefetching on, the scheduler pre-registers
    /// and feeds the sophon_prefetch_* set too (registry must outlive the
    /// loader).
    MetricsRegistry* metrics = nullptr;
    /// Optional traffic ledger (obs/ledger.h): the loader records demand-
    /// path wire bytes (cause mapped from the response's provenance and the
    /// degradation flag); staged bytes are recorded by the prefetch
    /// staging buffer at commit, never double-counted here.
    obs::TrafficLedger* ledger = nullptr;
    /// Clairvoyant prefetching over the epoch order: depth > 0 runs a
    /// scheduler thread that stages fetches ahead of the workers (see
    /// src/prefetch/). Tensors stay bit-identical — prefetching changes
    /// when a sample's bytes move, never what the sample becomes. Depth 0
    /// (default) is pure demand fetching.
    prefetch::PrefetchOptions prefetch{};
  };

  /// Borrows everything; keep service/pipeline/plan alive while loading.
  /// `num_samples` bounds the epoch; the plan must cover it (or be empty
  /// for no offloading).
  DataLoader(net::StorageService& service, const pipeline::Pipeline& pipeline,
             const core::OffloadPlan& plan, std::size_t num_samples, Options options);

  /// Joins workers; pending items are discarded.
  ~DataLoader();

  DataLoader(const DataLoader&) = delete;
  DataLoader& operator=(const DataLoader&) = delete;

  /// Spawn the workers. Call exactly once.
  void start();

  /// Block for the next ready sample; nullopt once the epoch is exhausted.
  /// Samples arrive in completion order, or in epoch-position order when
  /// Options::ordered is set. Rethrows a worker's failure (e.g. a fetch
  /// that kept failing even after degradation) instead of hanging.
  [[nodiscard]] std::optional<LoadedSample> next();

  /// Total response bytes fetched so far.
  [[nodiscard]] Bytes traffic() const;

  /// Samples delivered via the raw-fetch fallback so far.
  [[nodiscard]] std::uint64_t degraded_samples() const;

  /// Peak size the ordered-mode reorder buffer reached (0 when unordered).
  [[nodiscard]] std::size_t reorder_highwater() const;

  /// Prefetch scheduler counters; nullopt when prefetching is off.
  [[nodiscard]] std::optional<prefetch::PrefetchScheduler::Stats> prefetch_stats() const;

  /// Replan hook: evict staged-but-unclaimed prefetched responses whose
  /// stage no longer matches `plan` (their bytes become prefetch-wasted;
  /// workers re-fetch on demand under the plan the loader was built with).
  /// No-op returning 0 when prefetching is off.
  Bytes invalidate_prefetched(const core::OffloadPlan& plan);

  /// Tighten the prefetch staging budget mid-epoch; no-op when prefetching
  /// is off. Returns the bytes evicted to fit the new budget.
  Bytes shrink_prefetch_budget(Bytes new_budget);

 private:
  void worker_loop();
  /// Fetch + unpack, degrading the directive to raw on FetchError. The
  /// returned flag records whether degradation happened.
  [[nodiscard]] std::pair<net::FetchResponse, bool> fetch_with_degradation(
      net::FetchRequest request);

  net::StorageService& service_;
  const pipeline::Pipeline& pipeline_;
  const core::OffloadPlan& plan_;
  std::size_t num_samples_;
  Options options_;
  std::vector<std::uint32_t> order_;

  std::vector<std::thread> workers_;
  std::unique_ptr<prefetch::PrefetchScheduler> prefetcher_;  // null when depth 0
  bool started_ = false;

  mutable std::mutex mutex_;
  std::condition_variable queue_not_full_;
  std::condition_variable queue_not_empty_;
  std::deque<LoadedSample> queue_;
  std::map<std::size_t, LoadedSample> reorder_;  // ordered mode only
  std::size_t next_deliver_ = 0;    // next position to hand out (ordered)
  std::size_t next_position_ = 0;   // next epoch position to claim
  std::size_t delivered_ = 0;       // items handed to next()
  std::size_t produced_ = 0;        // items pushed by workers
  std::size_t reorder_highwater_ = 0;  // peak reorder buffer size (ordered)
  Bytes traffic_;
  std::uint64_t degraded_ = 0;
  std::exception_ptr failure_;      // first worker failure, rethrown by next()
  bool stopping_ = false;
};

}  // namespace sophon::loader
