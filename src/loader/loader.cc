#include "loader/loader.h"

#include <tuple>
#include <utility>

#include "dataset/sampler.h"
#include "net/wire.h"
#include "obs/trace.h"
#include "prefetch/metrics.h"
#include "storage/server.h"
#include "util/check.h"

namespace sophon::loader {

DataLoader::DataLoader(net::StorageService& service, const pipeline::Pipeline& pipeline,
                       const core::OffloadPlan& plan, std::size_t num_samples, Options options)
    : service_(service),
      pipeline_(pipeline),
      plan_(plan),
      num_samples_(num_samples),
      options_(options) {
  SOPHON_CHECK(num_samples > 0);
  SOPHON_CHECK(options.num_workers >= 1);
  SOPHON_CHECK(options.queue_capacity >= 1);
  SOPHON_CHECK(plan.size() == 0 || plan.size() == num_samples);
  if (options.metrics != nullptr) {
    // Pre-register so scrapes see explicit zeros before the first failure.
    static_cast<void>(options.metrics->counter("sophon_degraded_samples"));
    static_cast<void>(options.metrics->counter("sophon_loader_fetch_errors"));
    static_cast<void>(options.metrics->gauge("sophon_loader_reorder_highwater"));
    if (options.prefetch.depth > 0) prefetch::register_prefetch_metrics(*options.metrics);
  }
  order_ = dataset::EpochOrder(num_samples, options.seed, options.epoch).order();
}

DataLoader::~DataLoader() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_not_full_.notify_all();
  queue_not_empty_.notify_all();
  // Shut the prefetcher down before joining: a worker blocked in claim() on
  // an in-flight fetch is woken here and sees stopping_ on its next check.
  if (prefetcher_) prefetcher_->shutdown();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void DataLoader::start() {
  SOPHON_CHECK_MSG(!started_, "start() may only be called once");
  started_ = true;
  if (options_.prefetch.depth > 0) {
    prefetch::PrefetchScheduler::Config config;
    config.options = options_.prefetch;
    config.epoch = options_.epoch;
    config.compress_quality = options_.compress_quality;
    config.metrics = options_.metrics;
    config.ledger = options_.ledger;
    prefetcher_ =
        std::make_unique<prefetch::PrefetchScheduler>(service_, plan_, order_, config);
    prefetcher_->start();
  }
  workers_.reserve(options_.num_workers);
  for (std::size_t w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back([this, w] {
      if (obs::global_tracer().enabled()) {
        obs::global_tracer().set_thread_label("worker-" + std::to_string(w));
      }
      worker_loop();
    });
  }
}

std::pair<net::FetchResponse, bool> DataLoader::fetch_with_degradation(
    net::FetchRequest request) {
  try {
    return {service_.fetch(request), false};
  } catch (const net::FetchError&) {
    if (options_.metrics != nullptr) {
      options_.metrics->counter("sophon_loader_fetch_errors").increment();
    }
    const bool offloaded =
        request.directive.prefix_len > 0 || request.directive.compress_quality > 0;
    if (!options_.degrade_on_failure || !offloaded) throw;
    // Demote to "raw bytes, full local pipeline": the raw read path of a
    // storage node usually survives a struggling preprocessing engine, so
    // the epoch keeps moving at the cost of this sample's traffic savings.
    request.directive = net::OffloadDirective{};
    return {service_.fetch(request), true};
  }
}

void DataLoader::worker_loop() {
  for (;;) {
    std::size_t position;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_ || next_position_ >= num_samples_) return;
      position = next_position_++;
    }
    try {
      const std::uint64_t sample_id = order_[position];
      const std::size_t prefix = plan_.size() == 0 ? 0 : plan_.prefix(sample_id);

      net::FetchResponse response;
      bool degraded = false;
      bool staged = false;
      if (prefetcher_) {
        // Blocks only while the position is actively in flight; a skipped,
        // failed or not-yet-reached position falls through to demand.
        obs::Span span(obs::SpanCategory::kStagingWait, "staging_wait");
        span.args().sample = static_cast<std::int64_t>(sample_id);
        span.args().position = static_cast<std::int64_t>(position);
        if (auto claimed = prefetcher_->claim(position)) {
          response = std::move(claimed->response);
          staged = true;
          span.args().prefetched = 1;
        } else {
          span.args().prefetched = 0;
          const std::lock_guard<std::mutex> lock(mutex_);
          if (stopping_) return;  // claim was woken by shutdown, not a miss
        }
      }
      if (!staged) {
        net::FetchRequest request;
        request.sample_id = sample_id;
        request.epoch = options_.epoch;
        request.position = position;
        request.directive.prefix_len = static_cast<std::uint8_t>(prefix);
        if (prefix > 0) request.directive.compress_quality = options_.compress_quality;
        obs::Span span(obs::SpanCategory::kFetch, "fetch");
        span.args().sample = static_cast<std::int64_t>(sample_id);
        span.args().position = static_cast<std::int64_t>(position);
        span.args().prefix = static_cast<std::int32_t>(prefix);
        std::tie(response, degraded) = fetch_with_degradation(request);
        span.args().bytes = static_cast<std::int64_t>(response.wire_bytes().count());
        span.args().degraded = degraded ? 1 : 0;
        if (options_.ledger != nullptr) {
          // Demand-path recording point. Staged responses were recorded by
          // the staging buffer at commit — never re-recorded here.
          auto cause = obs::TrafficCause::kDemand;
          if (degraded) {
            cause = obs::TrafficCause::kRawFallback;
          } else if (response.provenance == net::FetchResponse::Provenance::kShard) {
            cause = obs::TrafficCause::kShardHit;
          } else if (response.provenance == net::FetchResponse::Provenance::kShardCorrupt) {
            cause = obs::TrafficCause::kShardCorruptRefetch;
          }
          options_.ledger->record(sample_id, response.stage, cause, response.wire_bytes());
        }
      }

      auto payload = net::unpack_response(response);
      SOPHON_CHECK_MSG(payload.has_value(), "malformed fetch response");
      image::Tensor tensor;
      {
        obs::Span span(obs::SpanCategory::kPreprocess, "preprocess");
        span.args().sample = static_cast<std::int64_t>(sample_id);
        span.args().position = static_cast<std::int64_t>(position);
        span.args().prefix = static_cast<std::int32_t>(response.stage);
        span.args().prefetched = staged ? 1 : 0;
        auto finished = pipeline_.run_seeded(
            std::move(*payload), response.stage, pipeline_.size(),
            storage::augmentation_seed(options_.seed, options_.epoch, sample_id));
        tensor = std::get<image::Tensor>(std::move(finished));
      }

      LoadedSample item;
      item.sample_id = sample_id;
      item.position = position;
      item.wire_bytes = response.wire_bytes();
      item.degraded = degraded;
      item.tensor = std::move(tensor);
      if (degraded && options_.metrics != nullptr) {
        options_.metrics->counter("sophon_degraded_samples").increment();
      }

      obs::Span collate_span(obs::SpanCategory::kCollate, "collate");
      collate_span.args().sample = static_cast<std::int64_t>(sample_id);
      collate_span.args().position = static_cast<std::int64_t>(position);
      std::unique_lock<std::mutex> lock(mutex_);
      if (options_.ordered) {
        // The position the consumer waits for must always be admitted, or a
        // buffer full of later positions would deadlock the pipeline.
        queue_not_full_.wait(lock, [this, &item] {
          return stopping_ || reorder_.size() < options_.queue_capacity ||
                 item.position == next_deliver_;
        });
        if (stopping_) return;
        traffic_ += item.wire_bytes;
        if (item.degraded) ++degraded_;
        reorder_.emplace(item.position, std::move(item));
        if (reorder_.size() > reorder_highwater_) {
          reorder_highwater_ = reorder_.size();
          if (options_.metrics != nullptr) {
            options_.metrics->gauge("sophon_loader_reorder_highwater")
                .set_max(static_cast<double>(reorder_highwater_));
          }
        }
      } else {
        queue_not_full_.wait(
            lock, [this] { return stopping_ || queue_.size() < options_.queue_capacity; });
        if (stopping_) return;
        traffic_ += item.wire_bytes;
        if (item.degraded) ++degraded_;
        queue_.push_back(std::move(item));
      }
      ++produced_;
      lock.unlock();
      queue_not_empty_.notify_all();
    } catch (...) {
      // A sample failed even after degradation (or the payload was
      // unusable). Surface the error through next() rather than leaving the
      // consumer blocked on a sample that will never arrive.
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!failure_) failure_ = std::current_exception();
        stopping_ = true;
      }
      queue_not_full_.notify_all();
      queue_not_empty_.notify_all();
      return;
    }
  }
}

std::optional<LoadedSample> DataLoader::next() {
  SOPHON_CHECK_MSG(started_, "call start() before next()");
  std::unique_lock<std::mutex> lock(mutex_);
  if (options_.ordered) {
    queue_not_empty_.wait(lock, [this] {
      return stopping_ || reorder_.contains(next_deliver_) || delivered_ >= num_samples_;
    });
    if (failure_) std::rethrow_exception(failure_);
    const auto it = reorder_.find(next_deliver_);
    if (it == reorder_.end()) return std::nullopt;  // exhausted (or stopping)
    LoadedSample item = std::move(it->second);
    reorder_.erase(it);
    ++next_deliver_;
    ++delivered_;
    lock.unlock();
    queue_not_full_.notify_all();
    return item;
  }
  queue_not_empty_.wait(lock, [this] {
    return stopping_ || !queue_.empty() || delivered_ + queue_.size() >= num_samples_;
  });
  if (failure_) std::rethrow_exception(failure_);
  if (queue_.empty()) return std::nullopt;  // epoch exhausted (or stopping)
  LoadedSample item = std::move(queue_.front());
  queue_.pop_front();
  ++delivered_;
  lock.unlock();
  queue_not_full_.notify_one();
  return item;
}

Bytes DataLoader::traffic() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return traffic_;
}

std::uint64_t DataLoader::degraded_samples() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return degraded_;
}

std::size_t DataLoader::reorder_highwater() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return reorder_highwater_;
}

std::optional<prefetch::PrefetchScheduler::Stats> DataLoader::prefetch_stats() const {
  if (!prefetcher_) return std::nullopt;
  return prefetcher_->stats();
}

Bytes DataLoader::invalidate_prefetched(const core::OffloadPlan& plan) {
  if (!prefetcher_) return Bytes(0);
  return prefetcher_->invalidate(plan);
}

Bytes DataLoader::shrink_prefetch_budget(Bytes new_budget) {
  if (!prefetcher_) return Bytes(0);
  return prefetcher_->shrink_budget(new_budget);
}

}  // namespace sophon::loader
