#include "shard/pack.h"

#include "dataset/synth.h"
#include "shard/format.h"
#include "util/check.h"

namespace sophon::shard {

std::optional<PackStats> pack_catalog(const dataset::Catalog& catalog, std::uint64_t seed,
                                      int quality, const pipeline::Pipeline& pipeline,
                                      const pipeline::CostModel& cost_model,
                                      const MaterializationPlan& plan,
                                      const std::filesystem::path& out) {
  const std::size_t deterministic = pipeline.deterministic_prefix();
  ShardWriter writer(out);
  PackStats stats;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const std::size_t stage = plan.stage_of(i);
    if (stage == 0) continue;
    SOPHON_CHECK_MSG(stage <= deterministic,
                     "materialisation stage crosses a random op — not epoch-invariant");
    const auto& meta = catalog.sample(i);
    pipeline::EncodedBlob blob;
    blob.bytes = dataset::materialize_encoded(meta, seed, quality);
    // Ops [0, stage) are all deterministic (checked above), so the stream
    // seed is irrelevant to the output — any epoch's serving of this prefix
    // produces exactly these bytes.
    auto payload = pipeline.run_seeded(std::move(blob), 0, stage, /*stream_seed=*/0);
    if (!writer.add(meta.id, static_cast<std::uint8_t>(stage), payload)) return std::nullopt;
    stats.modeled_cpu += pipeline.prefix_cost(meta.raw, stage, cost_model);
  }
  stats.entries = writer.count();
  stats.payload_bytes = writer.payload_bytes();
  stats.file_bytes = writer.file_bytes();
  if (!writer.finish()) return std::nullopt;
  return stats;
}

}  // namespace sophon::shard
