// Materialise a plan into a shard file: execute each selected sample's
// deterministic pipeline prefix and stream the result through ShardWriter.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>

#include "dataset/catalog.h"
#include "pipeline/cost_model.h"
#include "pipeline/pipeline.h"
#include "shard/planner.h"
#include "util/units.h"

namespace sophon::shard {

struct PackStats {
  std::size_t entries = 0;
  Bytes payload_bytes;   // framed payload bytes inside the shard
  Bytes file_bytes;      // total on-disk size (header + payloads + index)
  Seconds modeled_cpu;   // one-time modeled CPU spent running the prefixes
};

/// Execute every materialised sample's prefix over the catalog's synthetic
/// blobs (same `seed`/`quality` the storage tier uses, so the stored bytes
/// are bit-identical to what live execution would produce) and write the
/// shard to `out`. Enforces that every packed stage is within the
/// pipeline's deterministic prefix — persisting a random op's output would
/// freeze one epoch's augmentations. nullopt on I/O failure.
[[nodiscard]] std::optional<PackStats> pack_catalog(const dataset::Catalog& catalog,
                                                    std::uint64_t seed, int quality,
                                                    const pipeline::Pipeline& pipeline,
                                                    const pipeline::CostModel& cost_model,
                                                    const MaterializationPlan& plan,
                                                    const std::filesystem::path& out);

}  // namespace sophon::shard
