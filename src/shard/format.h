// The packed shard container: one file holding many samples materialised at
// chosen pipeline stages, FFCV-style.
//
// DiskStore keeps one file per raw blob — fine for ingest, hopeless for a
// hot serving path (an open/read/close per sample, no integrity checking).
// A shard packs the *preprocessed* payloads back-to-back with a fixed-size
// index, so the storage server can mmap the file once and serve any
// materialised sample as a `std::span` without touching the allocator or
// re-running the pipeline prefix.
//
// On-disk layout (all integers little-endian):
//
//   [0, 32)            header: magic "SPSHRD01", format version u32,
//                      entry count u64, index offset u64, index crc32 u32
//   [32, index_offset) payload region: each entry's framed wire bytes
//                      (exactly net::serialize_sample output, so a stage-
//                      matched fetch ships the stored bytes verbatim)
//   [index_offset, …)  index: entry-count fixed 40-byte records
//
// Every entry carries a crc32 of its payload bytes; ShardReader re-checks it
// on `read_verified`, which is what lets the storage server detect bit rot
// and fall back to live prefix execution instead of shipping garbage.
#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "pipeline/sample.h"
#include "util/units.h"

namespace sophon::shard {

inline constexpr std::array<std::uint8_t, 8> kMagic = {'S', 'P', 'S', 'H', 'R', 'D', '0', '1'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::size_t kHeaderBytes = 32;
inline constexpr std::size_t kIndexEntryBytes = 40;

/// One index record: where a sample's payload lives and what it is.
struct ShardEntry {
  std::uint64_t sample_id = 0;
  std::uint64_t offset = 0;  // payload start, from file start
  std::uint64_t length = 0;  // payload bytes (framed wire size)
  std::uint32_t crc = 0;     // crc32 of the payload bytes
  std::uint8_t stage = 0;    // pipeline stage the payload is materialised at
  pipeline::Repr repr = pipeline::Repr::kEncoded;
  std::uint8_t channels = 0;
  std::uint32_t width = 0;
  std::uint32_t height = 0;

  /// The analytic shape of the stored payload (sans framing).
  [[nodiscard]] pipeline::SampleShape shape() const;
};

/// Streams payloads to `<path>.tmp`, then writes index + header and renames
/// into place on `finish()` — a crash mid-pack never leaves a torn shard.
class ShardWriter {
 public:
  explicit ShardWriter(std::filesystem::path path);
  ~ShardWriter();

  ShardWriter(const ShardWriter&) = delete;
  ShardWriter& operator=(const ShardWriter&) = delete;

  /// Append one sample materialised at `stage`. Serialises with the wire
  /// framing, checksums, and records the index entry. False on I/O error or
  /// duplicate id.
  bool add(std::uint64_t sample_id, std::uint8_t stage, const pipeline::SampleData& payload);

  [[nodiscard]] std::size_t count() const { return entries_.size(); }
  [[nodiscard]] Bytes payload_bytes() const { return payload_bytes_; }

  /// Total on-disk size the shard will have after finish(): header +
  /// payloads + index.
  [[nodiscard]] Bytes file_bytes() const;

  /// Write index + header, fsync-free rename into place. False on error;
  /// the writer is unusable afterwards either way.
  bool finish();

 private:
  std::filesystem::path path_;
  std::filesystem::path tmp_path_;
  std::ofstream out_;
  std::vector<ShardEntry> entries_;
  std::unordered_map<std::uint64_t, std::size_t> by_id_;
  std::uint64_t cursor_ = kHeaderBytes;
  Bytes payload_bytes_;
  bool finished_ = false;
};

/// Read side: maps the whole file (mmap when available, buffered read as the
/// fallback) and exposes zero-copy spans over entry payloads.
class ShardReader {
 public:
  /// Open and validate a shard. nullopt when the file is missing, the magic
  /// or version is wrong, the index is truncated / fails its crc, or any
  /// entry points outside the payload region — a malformed shard is rejected
  /// wholesale rather than trusted entry by entry.
  [[nodiscard]] static std::optional<ShardReader> open(const std::filesystem::path& path);

  // Out of line: Mapping is incomplete here.
  ~ShardReader();
  ShardReader(ShardReader&&) noexcept;
  ShardReader& operator=(ShardReader&&) noexcept;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<ShardEntry>& entries() const { return entries_; }
  [[nodiscard]] Bytes file_bytes() const;

  /// Index lookup by sample id; nullptr when the sample is not in the shard.
  [[nodiscard]] const ShardEntry* find(std::uint64_t sample_id) const;

  /// The entry's payload bytes, zero-copy, *without* integrity checking.
  [[nodiscard]] std::span<const std::uint8_t> payload(const ShardEntry& entry) const;

  /// The entry's payload after re-computing its crc32. nullopt on mismatch —
  /// the caller falls back to live execution (and bumps its corrupt
  /// counter); the mapping itself is untouched.
  [[nodiscard]] std::optional<std::span<const std::uint8_t>> read_verified(
      const ShardEntry& entry) const;

 private:
  struct Mapping;  // mmap-or-buffer, released on destruction

  ShardReader() = default;

  std::unique_ptr<Mapping> mapping_;
  std::vector<ShardEntry> entries_;
  std::unordered_map<std::uint64_t, std::size_t> by_id_;
};

}  // namespace sophon::shard
