// The stage-materialization planner: the space-domain mirror of SOPHON's
// offloading decision.
//
// Offloading spends storage CPU to save network bytes; every epoch pays the
// prefix cost again. Materialising a sample's deterministic prefix into a
// packed shard spends *disk bytes once* to save that storage CPU *every
// epoch*. The planner ranks candidates by materialization efficiency —
// storage-CPU-seconds saved per epoch per byte of disk — and greedily packs
// the budget, exactly the shape of the paper's §3.2 greedy with the axes
// swapped.
//
// Only deterministic prefixes are eligible: beyond
// Pipeline::deterministic_prefix() the ops draw per-(epoch, sample)
// augmentation streams, so a persisted result would replay epoch-0
// augmentations forever (paper §3.3's argument against caching). For the
// standard train pipeline that limits materialisation to the decoded image;
// for the fully deterministic validation pipeline any stage qualifies,
// including post-resize stages that also shrink the wire size.
#pragma once

#include <cstdint>
#include <vector>

#include "core/metrics.h"
#include "core/plan.h"
#include "util/units.h"

namespace sophon::shard {

struct MaterializationOptions {
  /// Also consider samples the offload plan leaves on the compute node but
  /// which would benefit from offloading (profile.benefits()): once their
  /// prefix is free, the decision engine will usually pick them up on the
  /// re-rank, so plan shard space for their min-size stage.
  bool anticipate_offload = true;
};

/// One sample's best materialisation choice.
struct MaterializationCandidate {
  std::uint32_t sample_index = 0;
  std::uint8_t stage = 0;     // pipeline stage to persist at
  Bytes bytes;                // disk cost: framed payload + index record
  Seconds cpu_saved;          // storage CPU avoided per epoch

  /// Storage-CPU-seconds saved per epoch per byte of disk.
  [[nodiscard]] double efficiency() const {
    return bytes.count() > 0 ? cpu_saved.value() / bytes.as_double() : 0.0;
  }
};

/// The planner's output: a per-sample stage assignment (0 = live execution)
/// plus the totals the CLI and benches report.
struct MaterializationPlan {
  std::vector<std::uint8_t> stage;  // indexed by sample_index; 0 = not materialised
  Bytes total_bytes;                // on-disk footprint incl. header + index
  Seconds cpu_saved;                // per-epoch storage CPU removed
  std::size_t materialized = 0;

  [[nodiscard]] std::uint8_t stage_of(std::size_t sample_index) const {
    return sample_index < stage.size() ? stage[sample_index] : 0;
  }
};

/// Per-sample best candidates, unsorted. For each sample the eligible stages
/// are [1, min(target prefix, deterministic_limit)] where the target prefix
/// is the offload plan's directive (or the min-size stage under
/// `anticipate_offload` for beneficial-but-unoffloaded samples); the stage
/// with the best efficiency wins, deeper on ties. Samples with nothing to
/// save produce no candidate.
[[nodiscard]] std::vector<MaterializationCandidate> materialization_candidates(
    const std::vector<core::SampleProfile>& profiles, const core::OffloadPlan& plan,
    std::size_t deterministic_limit, const MaterializationOptions& options = {});

/// Greedy selection under a disk budget: candidates in descending efficiency
/// order, stopping at the first that would overflow. The stop-at-first-
/// overflow rule (the same shape as §3.2's stop rule) makes every selection
/// a prefix of one fixed order, so a larger budget always selects a superset
/// — storage CPU saved is monotone in the budget, which A16 asserts.
[[nodiscard]] MaterializationPlan plan_materialization(
    const std::vector<core::SampleProfile>& profiles, const core::OffloadPlan& plan,
    std::size_t deterministic_limit, Bytes budget, const MaterializationOptions& options = {});

/// The profiles as the decision engine should see them once the plan is
/// packed: materialised ops cost zero storage CPU (a shard read replaces
/// them), so t_cs of those samples collapses and the greedy re-rank offloads
/// more within the same storage-core budget — the composition the tentpole
/// requires.
[[nodiscard]] std::vector<core::SampleProfile> adjusted_profiles(
    std::vector<core::SampleProfile> profiles, const MaterializationPlan& plan);

}  // namespace sophon::shard
