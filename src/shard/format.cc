#include "shard/format.h"

#include <cstring>

#include "net/wire.h"
#include "util/check.h"
#include "util/crc32.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define SOPHON_SHARD_HAVE_MMAP 1
#endif

namespace sophon::shard {

namespace {

// All multi-byte fields are explicit little-endian byte sequences, written
// and read with shifts — independent of host endianness and free of the
// unaligned-load UB that casting into a mapped file invites.
void store_u32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

void store_u64(std::uint8_t* out, std::uint64_t v) {
  store_u32(out, static_cast<std::uint32_t>(v));
  store_u32(out + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t load_u32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) | static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 | static_cast<std::uint32_t>(in[3]) << 24;
}

std::uint64_t load_u64(const std::uint8_t* in) {
  return static_cast<std::uint64_t>(load_u32(in)) |
         static_cast<std::uint64_t>(load_u32(in + 4)) << 32;
}

// Index record layout, 40 bytes:
//   [0,8) id  [8,16) offset  [16,24) length  [24,28) crc
//   [28,32) width  [32,36) height  [36] stage  [37] repr  [38] channels
//   [39] zero padding
void encode_entry(const ShardEntry& entry, std::uint8_t* out) {
  store_u64(out, entry.sample_id);
  store_u64(out + 8, entry.offset);
  store_u64(out + 16, entry.length);
  store_u32(out + 24, entry.crc);
  store_u32(out + 28, entry.width);
  store_u32(out + 32, entry.height);
  out[36] = entry.stage;
  out[37] = static_cast<std::uint8_t>(entry.repr);
  out[38] = entry.channels;
  out[39] = 0;
}

bool decode_entry(const std::uint8_t* in, ShardEntry& entry) {
  entry.sample_id = load_u64(in);
  entry.offset = load_u64(in + 8);
  entry.length = load_u64(in + 16);
  entry.crc = load_u32(in + 24);
  entry.width = load_u32(in + 28);
  entry.height = load_u32(in + 32);
  entry.stage = in[36];
  if (in[37] > static_cast<std::uint8_t>(pipeline::Repr::kTensor)) return false;
  entry.repr = static_cast<pipeline::Repr>(in[37]);
  entry.channels = in[38];
  return true;
}

}  // namespace

pipeline::SampleShape ShardEntry::shape() const {
  pipeline::SampleShape s;
  s.repr = repr;
  s.width = static_cast<int>(width);
  s.height = static_cast<int>(height);
  s.channels = static_cast<int>(channels);
  // For encoded payloads the blob size is authoritative: framed length minus
  // the fixed wire overhead. Derived from dimensions otherwise.
  if (repr == pipeline::Repr::kEncoded) {
    s.bytes = Bytes(static_cast<std::int64_t>(length) - net::kFrameOverheadBytes);
  } else {
    s.bytes = s.byte_size();
  }
  return s;
}

ShardWriter::ShardWriter(std::filesystem::path path)
    : path_(std::move(path)), tmp_path_(path_.string() + ".tmp") {
  out_.open(tmp_path_, std::ios::binary | std::ios::trunc);
  if (out_) {
    const std::array<char, kHeaderBytes> placeholder{};
    out_.write(placeholder.data(), placeholder.size());
  }
}

ShardWriter::~ShardWriter() {
  if (!finished_) {
    out_.close();
    std::error_code ec;
    std::filesystem::remove(tmp_path_, ec);
  }
}

bool ShardWriter::add(std::uint64_t sample_id, std::uint8_t stage,
                      const pipeline::SampleData& payload) {
  if (!out_ || finished_) return false;
  if (by_id_.contains(sample_id)) return false;
  const auto framed = net::serialize_sample(payload);
  const auto shape = pipeline::shape_of(payload);

  ShardEntry entry;
  entry.sample_id = sample_id;
  entry.offset = cursor_;
  entry.length = framed.size();
  entry.crc = crc32(framed);
  entry.stage = stage;
  entry.repr = shape.repr;
  entry.channels = static_cast<std::uint8_t>(shape.channels);
  entry.width = static_cast<std::uint32_t>(shape.width);
  entry.height = static_cast<std::uint32_t>(shape.height);

  out_.write(reinterpret_cast<const char*>(framed.data()),
             static_cast<std::streamsize>(framed.size()));
  if (!out_) return false;
  by_id_.emplace(sample_id, entries_.size());
  entries_.push_back(entry);
  cursor_ += framed.size();
  payload_bytes_ += Bytes(static_cast<std::int64_t>(framed.size()));
  return true;
}

Bytes ShardWriter::file_bytes() const {
  return Bytes(static_cast<std::int64_t>(cursor_ + entries_.size() * kIndexEntryBytes));
}

bool ShardWriter::finish() {
  if (!out_ || finished_) return false;
  finished_ = true;

  std::vector<std::uint8_t> index(entries_.size() * kIndexEntryBytes);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    encode_entry(entries_[i], index.data() + i * kIndexEntryBytes);
  }
  out_.write(reinterpret_cast<const char*>(index.data()),
             static_cast<std::streamsize>(index.size()));

  std::array<std::uint8_t, kHeaderBytes> header{};
  std::memcpy(header.data(), kMagic.data(), kMagic.size());
  store_u32(header.data() + 8, kFormatVersion);
  store_u64(header.data() + 12, entries_.size());
  store_u64(header.data() + 20, cursor_);
  store_u32(header.data() + 28, crc32(index));
  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
  const bool wrote = static_cast<bool>(out_);
  out_.close();
  if (!wrote) return false;

  std::error_code ec;
  std::filesystem::rename(tmp_path_, path_, ec);
  return !ec;
}

// -- reader -----------------------------------------------------------------

struct ShardReader::Mapping {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
#ifdef SOPHON_SHARD_HAVE_MMAP
  void* mapped = nullptr;
#endif
  std::vector<std::uint8_t> buffer;  // fallback when mmap is unavailable

  ~Mapping() {
#ifdef SOPHON_SHARD_HAVE_MMAP
    if (mapped != nullptr) ::munmap(mapped, size);
#endif
  }

  static std::unique_ptr<Mapping> open(const std::filesystem::path& path) {
    auto m = std::make_unique<Mapping>();
#ifdef SOPHON_SHARD_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st{};
      if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        void* p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ, MAP_PRIVATE,
                         fd, 0);
        if (p != MAP_FAILED) {
          m->mapped = p;
          m->data = static_cast<const std::uint8_t*>(p);
          m->size = static_cast<std::size_t>(st.st_size);
          ::close(fd);
          return m;
        }
      }
      ::close(fd);
    }
#endif
    std::ifstream in(path, std::ios::binary);
    if (!in) return nullptr;
    m->buffer.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof()) return nullptr;
    m->data = m->buffer.data();
    m->size = m->buffer.size();
    return m;
  }
};

ShardReader::~ShardReader() = default;
ShardReader::ShardReader(ShardReader&&) noexcept = default;
ShardReader& ShardReader::operator=(ShardReader&&) noexcept = default;

std::optional<ShardReader> ShardReader::open(const std::filesystem::path& path) {
  auto mapping = Mapping::open(path);
  if (mapping == nullptr || mapping->size < kHeaderBytes) return std::nullopt;
  const std::uint8_t* data = mapping->data;
  const std::size_t size = mapping->size;

  if (std::memcmp(data, kMagic.data(), kMagic.size()) != 0) return std::nullopt;
  if (load_u32(data + 8) != kFormatVersion) return std::nullopt;
  const std::uint64_t count = load_u64(data + 12);
  const std::uint64_t index_offset = load_u64(data + 20);
  const std::uint32_t index_crc = load_u32(data + 28);

  // The index must sit entirely inside the file, after the payload region,
  // and account for the exact tail — anything else is a truncated or
  // tampered file. All arithmetic is bounds-checked before use.
  if (index_offset < kHeaderBytes || index_offset > size) return std::nullopt;
  if (count > (size - index_offset) / kIndexEntryBytes) return std::nullopt;
  if (index_offset + count * kIndexEntryBytes != size) return std::nullopt;
  const std::span<const std::uint8_t> index(data + index_offset, count * kIndexEntryBytes);
  if (crc32(index) != index_crc) return std::nullopt;

  ShardReader reader;
  reader.entries_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    ShardEntry entry;
    if (!decode_entry(index.data() + i * kIndexEntryBytes, entry)) return std::nullopt;
    if (entry.offset < kHeaderBytes || entry.offset > index_offset) return std::nullopt;
    if (entry.length > index_offset - entry.offset) return std::nullopt;
    if (!reader.by_id_.emplace(entry.sample_id, reader.entries_.size()).second) {
      return std::nullopt;  // duplicate sample id
    }
    reader.entries_.push_back(entry);
  }
  reader.mapping_ = std::move(mapping);
  return reader;
}

Bytes ShardReader::file_bytes() const {
  return Bytes(static_cast<std::int64_t>(mapping_->size));
}

const ShardEntry* ShardReader::find(std::uint64_t sample_id) const {
  const auto it = by_id_.find(sample_id);
  return it == by_id_.end() ? nullptr : &entries_[it->second];
}

std::span<const std::uint8_t> ShardReader::payload(const ShardEntry& entry) const {
  SOPHON_CHECK(entry.offset + entry.length <= mapping_->size);
  return {mapping_->data + entry.offset, static_cast<std::size_t>(entry.length)};
}

std::optional<std::span<const std::uint8_t>> ShardReader::read_verified(
    const ShardEntry& entry) const {
  const auto bytes = payload(entry);
  if (crc32(bytes) != entry.crc) return std::nullopt;
  return bytes;
}

}  // namespace sophon::shard
