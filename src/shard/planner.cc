#include "shard/planner.h"

#include <algorithm>

#include "shard/format.h"
#include "util/check.h"

namespace sophon::shard {

std::vector<MaterializationCandidate> materialization_candidates(
    const std::vector<core::SampleProfile>& profiles, const core::OffloadPlan& plan,
    std::size_t deterministic_limit, const MaterializationOptions& options) {
  SOPHON_CHECK_MSG(plan.size() == profiles.size(), "plan/profiles size mismatch");
  std::vector<MaterializationCandidate> candidates;
  for (const auto& profile : profiles) {
    const std::size_t i = profile.sample_index;
    std::size_t target = plan.prefix(i);
    if (target == 0 && options.anticipate_offload && profile.benefits()) {
      target = profile.min_stage;
    }
    const std::size_t limit = std::min(target, deterministic_limit);
    if (limit == 0) continue;

    MaterializationCandidate best;
    Seconds saved;
    for (std::size_t m = 1; m <= limit; ++m) {
      saved += profile.op_costs[m - 1];
      if (saved.value() <= 0.0) continue;
      MaterializationCandidate c;
      c.sample_index = profile.sample_index;
      c.stage = static_cast<std::uint8_t>(m);
      // stage_sizes are framed wire sizes (profiler adds kFrameOverheadBytes),
      // which is exactly what the shard stores; add the index record on top.
      c.bytes = profile.stage_sizes[m] + Bytes(static_cast<std::int64_t>(kIndexEntryBytes));
      c.cpu_saved = saved;
      // Deeper wins ties: same seconds-per-byte, more seconds absolute.
      if (best.stage == 0 || c.efficiency() >= best.efficiency()) best = c;
    }
    if (best.stage != 0) candidates.push_back(best);
  }
  return candidates;
}

MaterializationPlan plan_materialization(const std::vector<core::SampleProfile>& profiles,
                                         const core::OffloadPlan& plan,
                                         std::size_t deterministic_limit, Bytes budget,
                                         const MaterializationOptions& options) {
  auto candidates = materialization_candidates(profiles, plan, deterministic_limit, options);
  std::sort(candidates.begin(), candidates.end(),
            [](const MaterializationCandidate& a, const MaterializationCandidate& b) {
              if (a.efficiency() != b.efficiency()) return a.efficiency() > b.efficiency();
              return a.sample_index < b.sample_index;  // deterministic order
            });

  MaterializationPlan result;
  result.stage.assign(profiles.size(), 0);
  for (const auto& c : candidates) {
    // The first entry also pays the fixed shard header.
    const Bytes header = result.materialized == 0
                             ? Bytes(static_cast<std::int64_t>(kHeaderBytes))
                             : Bytes(0);
    if (result.total_bytes + header + c.bytes > budget) break;
    result.total_bytes += header + c.bytes;
    result.cpu_saved += c.cpu_saved;
    result.stage[c.sample_index] = c.stage;
    ++result.materialized;
  }
  return result;
}

namespace {
// Serving a materialised prefix is not literally free: the server still
// crc-checks and copies the stored bytes. ~0.5 ns/byte keeps t_cs near-zero
// but positive, so SampleProfile::efficiency() ranks materialised samples
// *first* on the re-rank instead of dividing by zero and dropping to the
// back of the greedy order.
constexpr double kShardReadNsPerByte = 0.5;
}  // namespace

std::vector<core::SampleProfile> adjusted_profiles(std::vector<core::SampleProfile> profiles,
                                                   const MaterializationPlan& plan) {
  for (auto& profile : profiles) {
    const std::size_t m = plan.stage_of(profile.sample_index);
    if (m == 0) continue;
    SOPHON_CHECK(m <= profile.op_costs.size());
    for (std::size_t j = 0; j < m; ++j) profile.op_costs[j] = Seconds(0.0);
    profile.op_costs[m - 1] =
        Seconds::nanos(kShardReadNsPerByte * profile.stage_sizes[m].as_double());
    Seconds prefix;
    for (std::size_t j = 0; j < profile.min_stage; ++j) prefix += profile.op_costs[j];
    profile.prefix_time = prefix;
  }
  return profiles;
}

}  // namespace sophon::shard
