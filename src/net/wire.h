// Wire serialisation of sample payloads.
//
// The on-wire encoding defines the data-traffic numbers everything else
// reports, so it is the single source of truth for "how many bytes does a
// sample at stage k cost": an encoded blob travels as-is, a decoded image as
// 1 byte per channel sample, a tensor as 4 bytes per element — exactly the
// size semantics of the paper's Figure 1a.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "pipeline/sample.h"
#include "util/units.h"

namespace sophon::net {

/// Fixed framing overhead per message (tag, dimensions, lengths). Small by
/// design — gRPC framing is likewise negligible next to payloads.
inline constexpr std::int64_t kFrameOverheadBytes = 16;

/// Serialise a payload into a framed wire buffer.
[[nodiscard]] std::vector<std::uint8_t> serialize_sample(const pipeline::SampleData& data);

/// Parse a framed wire buffer. Returns nullopt on malformed input.
[[nodiscard]] std::optional<pipeline::SampleData> deserialize_sample(
    std::span<const std::uint8_t> buffer);

/// Analytic wire size of a sample with the given shape (payload + framing).
/// Matches serialize_sample(...).size() for materialised data of that shape.
[[nodiscard]] Bytes wire_size(const pipeline::SampleShape& shape);

/// Client-side unpacking of a fetch response: deserialises the frame and,
/// when the server compressed the payload (§6 extension), decodes it back
/// to the image the pipeline stage expects. nullopt on malformed data.
[[nodiscard]] std::optional<pipeline::SampleData> unpack_response(
    const struct FetchResponse& response);

}  // namespace sophon::net
