#include "net/fault.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace sophon::net {
namespace {

/// One deterministic uniform draw in [0, 1) from a label and up to three keys.
double draw(std::uint64_t seed, std::string_view label, std::uint64_t a, std::uint64_t b = 0,
            std::uint64_t c = 0) {
  Rng rng(derive_seed(derive_seed(derive_seed(derive_seed(seed, label), a), b), c));
  return rng.uniform();
}

void check_probability(double p) { SOPHON_CHECK(p >= 0.0 && p <= 1.0); }

}  // namespace

FaultInjector::FaultInjector(FaultProfile profile) : profile_(profile) {
  check_probability(profile.transient_fail_prob);
  check_probability(profile.permanent_fail_prob);
  check_probability(profile.corrupt_prob);
  check_probability(profile.latency_spike_prob);
  check_probability(profile.bandwidth_dip_prob);
  SOPHON_CHECK(profile.latency_spike.value() >= 0.0);
  SOPHON_CHECK(profile.bandwidth_dip_factor >= 1.0);
}

bool FaultInjector::enabled() const {
  return profile_.transient_fail_prob > 0.0 || profile_.permanent_fail_prob > 0.0 ||
         profile_.corrupt_prob > 0.0 || profile_.latency_spike_prob > 0.0 ||
         profile_.bandwidth_dip_prob > 0.0;
}

FaultKind FaultInjector::fetch_fault(std::uint64_t sample_id, std::uint64_t epoch,
                                     std::uint32_t attempt, bool offloaded) const {
  if (profile_.offload_only && !offloaded) return FaultKind::kNone;
  // Permanent faults are per sample: once broken, every attempt fails.
  if (draw(profile_.seed, "permanent-fail", sample_id) < profile_.permanent_fail_prob) {
    return FaultKind::kPermanent;
  }
  if (draw(profile_.seed, "corrupt", sample_id, epoch, attempt) < profile_.corrupt_prob) {
    return FaultKind::kCorrupt;
  }
  if (draw(profile_.seed, "transient-fail", sample_id, epoch, attempt) <
      profile_.transient_fail_prob) {
    return FaultKind::kTransient;
  }
  return FaultKind::kNone;
}

LinkFault FaultInjector::link_fault(std::uint64_t transfer_index) const {
  LinkFault fault;
  if (draw(profile_.seed, "latency-spike", transfer_index) < profile_.latency_spike_prob) {
    fault.extra_latency = profile_.latency_spike;
  }
  if (draw(profile_.seed, "bandwidth-dip", transfer_index) < profile_.bandwidth_dip_prob) {
    fault.bandwidth_factor = profile_.bandwidth_dip_factor;
  }
  return fault;
}

FaultyStorageService::FaultyStorageService(StorageService& inner, const FaultInjector& faults)
    : inner_(inner), faults_(faults) {}

FetchResponse FaultyStorageService::fetch(const FetchRequest& request) {
  std::uint32_t attempt;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t key = derive_seed(request.epoch, request.sample_id);
    attempt = attempts_[key]++;
  }
  const bool offloaded = request.directive.prefix_len > 0;
  switch (faults_.fetch_fault(request.sample_id, request.epoch, attempt, offloaded)) {
    case FaultKind::kNone:
      break;
    case FaultKind::kTransient: {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++failures_;
      throw FetchError(FetchError::Kind::kTransient, "injected transient fetch failure");
    }
    case FaultKind::kPermanent: {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++failures_;
      throw FetchError(FetchError::Kind::kPermanent, "injected permanent fetch failure");
    }
    case FaultKind::kCorrupt: {
      auto response = inner_.fetch(request);
      // Mangle the frame so validation must reject it: truncate below the
      // minimum frame size and flip what remains.
      response.payload.resize(std::min<std::size_t>(response.payload.size(), 3));
      for (auto& byte : response.payload) byte ^= 0xA5;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++corruptions_;
      }
      return response;
    }
  }
  return inner_.fetch(request);
}

std::uint64_t FaultyStorageService::injected_failures() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return failures_;
}

std::uint64_t FaultyStorageService::injected_corruptions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return corruptions_;
}

}  // namespace sophon::net
