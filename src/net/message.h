// Fetch protocol messages.
//
// SOPHON's design step (d): "offloading directives for each sample are
// incorporated into data fetch requests to the storage server". A directive
// is simply the pipeline prefix length the storage node should execute
// before replying — 0 means "send the raw blob".
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.h"

namespace sophon::net {

/// Per-sample offloading instruction: run the first `prefix_len` pipeline
/// ops near storage, ship the result. If `compress_quality` is nonzero and
/// the partially preprocessed payload is an uncompressed image, the storage
/// node SJPG-re-encodes it at that quality before shipping (the paper's §6
/// selective-compression extension; lossy, so opt-in per sample).
struct OffloadDirective {
  std::uint8_t prefix_len = 0;
  std::uint8_t compress_quality = 0;  // 0 = no compression; else 1..100

  friend bool operator==(OffloadDirective, OffloadDirective) = default;
};

/// Client → storage: fetch one sample, optionally preprocessed. `epoch` and
/// `position` seed the storage-side augmentation RNG so a given (epoch,
/// sample) pair sees the same random crop/flip regardless of where the op
/// runs — preserving the training-accuracy argument of §3.3.
struct FetchRequest {
  std::uint64_t sample_id = 0;
  std::uint64_t epoch = 0;
  std::uint64_t position = 0;
  OffloadDirective directive;
};

/// Storage → client: the (possibly partially preprocessed) payload.
struct FetchResponse {
  /// How the storage node produced the payload — clients map this onto the
  /// traffic ledger's cause taxonomy (shard-hit vs live vs corrupt-refetch).
  enum class Provenance : std::uint8_t {
    kLive = 0,          ///< executed the pipeline prefix on the live blob
    kShard,             ///< served verbatim from a materialized shard frame
    kShardCorrupt,      ///< shard frame failed crc; re-served from the live path
  };

  std::uint64_t sample_id = 0;
  std::uint8_t stage = 0;  // pipeline stage of the payload
  Provenance provenance = Provenance::kLive;
  /// True when the payload is an SJPG-re-encoded image that the client must
  /// decode back to stage `stage` before running the remaining ops.
  bool payload_compressed = false;
  std::vector<std::uint8_t> payload;  // framed wire buffer (see net/wire.h)

  [[nodiscard]] Bytes wire_bytes() const {
    return Bytes(static_cast<std::int64_t>(payload.size()));
  }
};

}  // namespace sophon::net
