#include "net/wire.h"

#include "codec/sjpg.h"
#include "net/message.h"

#include <cstring>

#include "util/check.h"

namespace sophon::net {

namespace {

// Layout: [tag u8][width u32][height u32][channels u8][payload_len u32]
// padded to kFrameOverheadBytes, then the payload bytes.
constexpr std::size_t kHeaderBytes = static_cast<std::size_t>(kFrameOverheadBytes);

void put_u32(std::vector<std::uint8_t>& out, std::size_t at, std::uint32_t v) {
  out[at] = static_cast<std::uint8_t>(v >> 24);
  out[at + 1] = static_cast<std::uint8_t>(v >> 16);
  out[at + 2] = static_cast<std::uint8_t>(v >> 8);
  out[at + 3] = static_cast<std::uint8_t>(v);
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t at) {
  return (static_cast<std::uint32_t>(in[at]) << 24) |
         (static_cast<std::uint32_t>(in[at + 1]) << 16) |
         (static_cast<std::uint32_t>(in[at + 2]) << 8) | static_cast<std::uint32_t>(in[at + 3]);
}

}  // namespace

std::vector<std::uint8_t> serialize_sample(const pipeline::SampleData& data) {
  std::vector<std::uint8_t> out(kHeaderBytes, 0);
  out[0] = static_cast<std::uint8_t>(pipeline::sample_repr(data));

  if (const auto* blob = std::get_if<pipeline::EncodedBlob>(&data)) {
    put_u32(out, 10, static_cast<std::uint32_t>(blob->bytes.size()));
    out.insert(out.end(), blob->bytes.begin(), blob->bytes.end());
    return out;
  }
  if (const auto* img = std::get_if<image::Image>(&data)) {
    put_u32(out, 1, static_cast<std::uint32_t>(img->width()));
    put_u32(out, 5, static_cast<std::uint32_t>(img->height()));
    out[9] = static_cast<std::uint8_t>(img->channels());
    put_u32(out, 10, static_cast<std::uint32_t>(img->data().size()));
    out.insert(out.end(), img->data().begin(), img->data().end());
    return out;
  }
  const auto& tensor = std::get<image::Tensor>(data);
  put_u32(out, 1, static_cast<std::uint32_t>(tensor.width()));
  put_u32(out, 5, static_cast<std::uint32_t>(tensor.height()));
  out[9] = static_cast<std::uint8_t>(tensor.channels());
  const auto payload_bytes = tensor.data().size() * sizeof(float);
  put_u32(out, 10, static_cast<std::uint32_t>(payload_bytes));
  const auto offset = out.size();
  out.resize(offset + payload_bytes);
  std::memcpy(out.data() + offset, tensor.data().data(), payload_bytes);
  return out;
}

std::optional<pipeline::SampleData> deserialize_sample(std::span<const std::uint8_t> buffer) {
  if (buffer.size() < kHeaderBytes) return std::nullopt;
  const auto tag = buffer[0];
  const auto width = static_cast<int>(get_u32(buffer, 1));
  const auto height = static_cast<int>(get_u32(buffer, 5));
  const auto channels = static_cast<int>(buffer[9]);
  const auto payload_len = static_cast<std::size_t>(get_u32(buffer, 10));
  if (buffer.size() != kHeaderBytes + payload_len) return std::nullopt;
  const auto payload = buffer.subspan(kHeaderBytes);

  switch (static_cast<pipeline::Repr>(tag)) {
    case pipeline::Repr::kEncoded: {
      pipeline::EncodedBlob blob;
      blob.bytes.assign(payload.begin(), payload.end());
      return pipeline::SampleData(std::move(blob));
    }
    case pipeline::Repr::kImage: {
      if (width <= 0 || height <= 0 || (channels != 1 && channels != 3)) return std::nullopt;
      const auto expected = static_cast<std::size_t>(width) * static_cast<std::size_t>(height) *
                            static_cast<std::size_t>(channels);
      if (payload_len != expected) return std::nullopt;
      std::vector<std::uint8_t> pixels(payload.begin(), payload.end());
      return pipeline::SampleData(image::Image(width, height, channels, std::move(pixels)));
    }
    case pipeline::Repr::kTensor: {
      if (width <= 0 || height <= 0 || channels <= 0) return std::nullopt;
      const auto elements = static_cast<std::size_t>(width) * static_cast<std::size_t>(height) *
                            static_cast<std::size_t>(channels);
      if (payload_len != elements * sizeof(float)) return std::nullopt;
      image::Tensor tensor(channels, height, width);
      std::memcpy(tensor.data().data(), payload.data(), payload_len);
      return pipeline::SampleData(std::move(tensor));
    }
    default:
      return std::nullopt;
  }
}

Bytes wire_size(const pipeline::SampleShape& shape) {
  return shape.byte_size() + Bytes(kFrameOverheadBytes);
}

std::optional<pipeline::SampleData> unpack_response(const FetchResponse& response) {
  auto payload = deserialize_sample(response.payload);
  if (!payload) return std::nullopt;
  if (!response.payload_compressed) return payload;
  const auto* blob = std::get_if<pipeline::EncodedBlob>(&*payload);
  if (blob == nullptr) return std::nullopt;  // compressed flag demands a blob
  auto image = codec::sjpg_decode(blob->bytes);
  if (!image) return std::nullopt;
  return pipeline::SampleData(std::move(*image));
}

}  // namespace sophon::net
