#include "net/rpc.h"

namespace sophon::net {

MeteringStorageService::MeteringStorageService(StorageService& inner) : inner_(inner) {}

FetchResponse MeteringStorageService::fetch(const FetchRequest& request) {
  auto response = inner_.fetch(request);
  traffic_.fetch_add(response.wire_bytes().count(), std::memory_order_relaxed);
  responses_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

Bytes MeteringStorageService::traffic() const {
  return Bytes(traffic_.load(std::memory_order_relaxed));
}

std::uint64_t MeteringStorageService::responses() const {
  return responses_.load(std::memory_order_relaxed);
}

LoopbackChannel::LoopbackChannel(StorageService& service) : service_(service) {}

FetchResponse LoopbackChannel::fetch(const FetchRequest& request) {
  auto response = service_.fetch(request);
  traffic_ += response.wire_bytes();
  ++requests_;
  return response;
}

void LoopbackChannel::reset_counters() {
  traffic_ = Bytes(0);
  requests_ = 0;
}

}  // namespace sophon::net
