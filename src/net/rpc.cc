#include "net/rpc.h"

namespace sophon::net {

LoopbackChannel::LoopbackChannel(StorageService& service) : service_(service) {}

FetchResponse LoopbackChannel::fetch(const FetchRequest& request) {
  auto response = service_.fetch(request);
  traffic_ += response.wire_bytes();
  ++requests_;
  return response;
}

void LoopbackChannel::reset_counters() {
  traffic_ = Bytes(0);
  requests_ = 0;
}

}  // namespace sophon::net
