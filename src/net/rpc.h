// In-process RPC: the stand-in for the paper's gRPC data-fetch path.
//
// The service interface is what a networked implementation would expose; the
// loopback channel moves real bytes through the same request/response types
// and keeps traffic counters, so examples and tests exercise the exact
// protocol the simulator models.
#pragma once

#include <memory>

#include "net/message.h"
#include "util/units.h"

namespace sophon::net {

/// The storage-side fetch service (implemented in src/storage).
class StorageService {
 public:
  virtual ~StorageService() = default;

  /// Serve one fetch, executing the directive's pipeline prefix.
  [[nodiscard]] virtual FetchResponse fetch(const FetchRequest& request) = 0;
};

/// A client channel to a storage service. In-process ("loopback") transport:
/// calls go straight to the service, but every response's wire size is
/// metered exactly as it would be on the network.
class LoopbackChannel {
 public:
  /// The channel borrows the service; the caller keeps it alive.
  explicit LoopbackChannel(StorageService& service);

  [[nodiscard]] FetchResponse fetch(const FetchRequest& request);

  /// Cumulative response payload traffic over this channel.
  [[nodiscard]] Bytes traffic() const { return traffic_; }
  [[nodiscard]] std::uint64_t requests() const { return requests_; }

  void reset_counters();

 private:
  StorageService& service_;
  Bytes traffic_;
  std::uint64_t requests_ = 0;
};

}  // namespace sophon::net
