// In-process RPC: the stand-in for the paper's gRPC data-fetch path.
//
// The service interface is what a networked implementation would expose; the
// loopback channel moves real bytes through the same request/response types
// and keeps traffic counters, so examples and tests exercise the exact
// protocol the simulator models. Failure is part of the contract: a fetch
// may throw FetchError (transient or permanent), which the resilience layer
// (net/resilience.h) turns into retries and the loader turns into graceful
// degradation.
#pragma once

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>

#include "net/message.h"
#include "util/units.h"

namespace sophon::net {

/// A failed fetch. `kind()` tells the caller whether retrying can help:
/// transient and corrupt errors are retryable; permanent, deadline and
/// exhausted errors are final for this request (the loader may still degrade
/// the directive and re-fetch raw).
class FetchError : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t {
    kTransient,  // momentary failure (timeout, dropped connection)
    kPermanent,  // the request can never succeed as issued
    kCorrupt,    // response arrived but failed integrity validation
    kDeadline,   // per-request deadline exceeded while backing off
    kExhausted,  // retry budget spent on transient/corrupt errors
  };

  FetchError(Kind kind, const std::string& what) : std::runtime_error(what), kind_(kind) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  /// Whether an immediate retry of the same request could succeed.
  [[nodiscard]] bool retryable() const {
    return kind_ == Kind::kTransient || kind_ == Kind::kCorrupt;
  }

 private:
  Kind kind_;
};

/// The storage-side fetch service (implemented in src/storage). Decorators
/// compose around it: FaultyStorageService injects failures for testing,
/// ResilientStorageService adds retry/backoff/deadline on top of any inner
/// service.
class StorageService {
 public:
  virtual ~StorageService() = default;

  /// Serve one fetch, executing the directive's pipeline prefix. May throw
  /// FetchError when the service (or a fault-injecting decorator) fails.
  [[nodiscard]] virtual FetchResponse fetch(const FetchRequest& request) = 0;
};

/// Wire meter: a transparent decorator counting every response's payload
/// bytes exactly where they arrive client-side. Sits between the resilience
/// layer and any fault injector so corrupt/truncated responses are metered
/// at the size that actually crossed the wire — the ground truth the
/// traffic ledger reconciles against in the threaded (non-DES) path.
/// Thread-safe: loader workers and the prefetch scheduler share one meter.
class MeteringStorageService final : public StorageService {
 public:
  explicit MeteringStorageService(StorageService& inner);

  [[nodiscard]] FetchResponse fetch(const FetchRequest& request) override;

  /// Cumulative payload bytes of every response that arrived (including
  /// responses later judged corrupt and retried).
  [[nodiscard]] Bytes traffic() const;
  [[nodiscard]] std::uint64_t responses() const;

 private:
  StorageService& inner_;
  std::atomic<std::int64_t> traffic_{0};
  std::atomic<std::uint64_t> responses_{0};
};

/// A client channel to a storage service. In-process ("loopback") transport:
/// calls go straight to the service, but every response's wire size is
/// metered exactly as it would be on the network.
class LoopbackChannel {
 public:
  /// The channel borrows the service; the caller keeps it alive.
  explicit LoopbackChannel(StorageService& service);

  [[nodiscard]] FetchResponse fetch(const FetchRequest& request);

  /// Cumulative response payload traffic over this channel.
  [[nodiscard]] Bytes traffic() const { return traffic_; }
  [[nodiscard]] std::uint64_t requests() const { return requests_; }

  void reset_counters();

 private:
  StorageService& service_;
  Bytes traffic_;
  std::uint64_t requests_ = 0;
};

}  // namespace sophon::net
