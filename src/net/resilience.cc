#include "net/resilience.h"

#include <cmath>
#include <thread>

#include "net/wire.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/rng.h"

namespace sophon::net {

Seconds backoff_for(const RetryPolicy& policy, std::uint64_t sample_id, std::uint64_t epoch,
                    std::uint32_t retry) {
  SOPHON_CHECK(retry >= 1);
  const double base =
      policy.initial_backoff.value() * std::pow(policy.multiplier, static_cast<double>(retry - 1));
  Rng rng(derive_seed(derive_seed(derive_seed(derive_seed(policy.seed, "backoff"), sample_id),
                                  epoch),
                      retry));
  const double u = rng.uniform(1.0 - policy.jitter, 1.0 + policy.jitter);
  return Seconds(base * u);
}

ResilientStorageService::ResilientStorageService(StorageService& inner, RetryPolicy policy,
                                                 MetricsRegistry* metrics,
                                                 obs::TrafficLedger* ledger)
    : inner_(inner), policy_(policy), metrics_(metrics), ledger_(ledger) {
  SOPHON_CHECK(policy.max_attempts >= 1);
  SOPHON_CHECK(policy.initial_backoff.value() >= 0.0);
  SOPHON_CHECK(policy.multiplier >= 1.0);
  SOPHON_CHECK(policy.jitter >= 0.0 && policy.jitter < 1.0);
  SOPHON_CHECK(policy.deadline.value() >= 0.0);
  if (metrics_ != nullptr) {
    // Pre-register every metric so scrapes see explicit zeros before the
    // first fetch (absent vs. zero is a real distinction for operators).
    static_cast<void>(metrics_->counter("sophon_fetch_attempts"));
    static_cast<void>(metrics_->counter("sophon_fetch_attempt_bytes"));
    static_cast<void>(metrics_->counter("sophon_fetch_wasted_bytes"));
    static_cast<void>(metrics_->counter("sophon_fetch_retries"));
    static_cast<void>(metrics_->counter("sophon_fetch_failures"));
    static_cast<void>(metrics_->counter("sophon_fetch_corrupt"));
    static_cast<void>(metrics_->counter("sophon_fetch_deadline_exceeded"));
    static_cast<void>(metrics_->histogram("sophon_fetch_backoff"));
  }
}

FetchResponse ResilientStorageService::fetch(const FetchRequest& request) {
  Seconds waited;
  for (std::uint32_t attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (metrics_ != nullptr) metrics_->counter("sophon_fetch_attempts").increment();
    bool corrupt = false;
    try {
      auto response = [&] {
        obs::Span span(obs::SpanCategory::kFetch, "fetch_attempt");
        span.args().sample = static_cast<std::int64_t>(request.sample_id);
        span.args().prefix = static_cast<std::int32_t>(request.directive.prefix_len);
        span.args().retries = static_cast<std::int32_t>(attempt);
        return inner_.fetch(request);
      }();
      // Every arrived response moved wire bytes, whether or not it is
      // usable — count them per attempt so retry amplification shows up in
      // telemetry rather than only the final success's payload.
      const Bytes arrived = response.wire_bytes();
      if (metrics_ != nullptr) {
        metrics_->counter("sophon_fetch_attempt_bytes")
            .increment(static_cast<std::uint64_t>(arrived.count()));
      }
      // Frame-validate before handing the payload upward: a response that
      // cannot be deserialised is a corrupt transfer, not a success.
      if (deserialize_sample(response.payload).has_value()) return response;
      corrupt = true;
      corrupt_.increment();
      // The corrupt payload is discarded here; no later consumer will see
      // these bytes, so this is their single ledger recording point.
      if (ledger_ != nullptr) {
        ledger_->record(request.sample_id, response.stage, obs::TrafficCause::kRetry, arrived);
      }
      if (metrics_ != nullptr) {
        metrics_->counter("sophon_fetch_corrupt").increment();
        metrics_->counter("sophon_fetch_wasted_bytes")
            .increment(static_cast<std::uint64_t>(arrived.count()));
      }
    } catch (const FetchError& error) {
      if (!error.retryable()) {
        failures_.increment();
        if (metrics_ != nullptr) metrics_->counter("sophon_fetch_failures").increment();
        throw;
      }
      if (error.kind() == FetchError::Kind::kCorrupt) {
        corrupt_.increment();
        if (metrics_ != nullptr) metrics_->counter("sophon_fetch_corrupt").increment();
      }
    }
    if (attempt + 1 == policy_.max_attempts) break;  // budget spent

    const Seconds backoff = backoff_for(policy_, request.sample_id, request.epoch, attempt + 1);
    if (policy_.deadline.value() > 0.0 && (waited + backoff) > policy_.deadline) {
      deadline_exceeded_.increment();
      failures_.increment();
      if (metrics_ != nullptr) {
        metrics_->counter("sophon_fetch_deadline_exceeded").increment();
        metrics_->counter("sophon_fetch_failures").increment();
      }
      throw FetchError(FetchError::Kind::kDeadline,
                       corrupt ? "fetch deadline exceeded after corrupt response"
                               : "fetch deadline exceeded while backing off");
    }
    waited += backoff;
    retries_.increment();
    if (metrics_ != nullptr) {
      metrics_->counter("sophon_fetch_retries").increment();
      metrics_->histogram("sophon_fetch_backoff").observe(backoff);
    }
    if (policy_.sleep && backoff.value() > 0.0) {
      obs::Span span(obs::SpanCategory::kRetry, "retry_backoff");
      span.args().sample = static_cast<std::int64_t>(request.sample_id);
      span.args().retries = static_cast<std::int32_t>(attempt + 1);
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff.value()));
    }
  }
  failures_.increment();
  if (metrics_ != nullptr) metrics_->counter("sophon_fetch_failures").increment();
  throw FetchError(FetchError::Kind::kExhausted, "fetch retry budget exhausted");
}

}  // namespace sophon::net
