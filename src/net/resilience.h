// Retry, backoff and deadline handling for the fetch path.
//
// ResilientStorageService decorates any StorageService with the client-side
// survival kit a real deployment needs: transient and corrupt-response
// failures are retried with exponential backoff plus deterministic jitter, a
// per-request deadline bounds the total time spent waiting, and every
// response is frame-validated so corruption is caught before the loader
// touches it. Backoff jitter is derived from (seed, sample, epoch, attempt),
// never from wall clock, so a given fault trace produces an identical retry
// schedule run-to-run — the property the backoff-determinism tests pin down.
//
// Telemetry (optional, via util/telemetry): sophon_fetch_attempts,
// sophon_fetch_retries, sophon_fetch_failures, sophon_fetch_corrupt,
// sophon_fetch_deadline_exceeded counters, sophon_fetch_attempt_bytes /
// sophon_fetch_wasted_bytes (every arrived attempt's payload, and the
// subset discarded as corrupt — so retry amplification is visible, not
// just final-success traffic) and the sophon_fetch_backoff histogram.
#pragma once

#include <cstdint>

#include "net/rpc.h"
#include "obs/ledger.h"
#include "util/telemetry.h"
#include "util/units.h"

namespace sophon::net {

/// Client-side retry configuration for one storage channel.
struct RetryPolicy {
  /// Total tries per request, including the first (1 = no retries).
  std::uint32_t max_attempts = 4;
  /// Backoff before retry k (1-based) is
  ///   initial_backoff * multiplier^(k-1) * U, with U deterministically
  /// jittered in [1 - jitter, 1 + jitter].
  Seconds initial_backoff = Seconds::millis(1.0);
  double multiplier = 2.0;
  double jitter = 0.5;  // in [0, 1)
  /// Per-request deadline on the cumulative backoff wait; a retry that would
  /// push the total past this throws FetchError(kDeadline). Zero = no
  /// deadline. Deliberately counts modeled waits (not wall clock) so
  /// deadline behaviour is deterministic.
  Seconds deadline;
  /// Seed for jitter derivation (independent of the fault seed).
  std::uint64_t seed = 0;
  /// Actually sleep during backoff. On by default — this is a real threaded
  /// fetch path; tests that only care about the schedule turn it off.
  bool sleep = true;
};

/// The jittered backoff taken before retry `retry` (1-based) of the fetch
/// for (epoch, sample). Exposed for tests and for the sim-side replay hook,
/// which must charge the identical waits the real path would take.
[[nodiscard]] Seconds backoff_for(const RetryPolicy& policy, std::uint64_t sample_id,
                                  std::uint64_t epoch, std::uint32_t retry);

/// StorageService decorator adding retry/backoff/deadline and corruption
/// detection on top of any inner service (typically the real StorageServer,
/// or a FaultyStorageService in tests). Thread-safe to the same degree as
/// the inner service; the loader's workers share one instance.
class ResilientStorageService final : public StorageService {
 public:
  /// Borrows the inner service (and registry/ledger, when given); keep them
  /// alive. The ledger receives the wire bytes of corrupt-arrived responses
  /// (cause kRetry) — the bytes no later consumer will ever see.
  ResilientStorageService(StorageService& inner, RetryPolicy policy,
                          MetricsRegistry* metrics = nullptr,
                          obs::TrafficLedger* ledger = nullptr);

  /// Fetch with retries. Throws FetchError:
  ///   kPermanent  — inner service failed permanently (no retry attempted),
  ///   kDeadline   — the deadline ran out while backing off,
  ///   kExhausted  — max_attempts tries all failed transiently/corruptly.
  [[nodiscard]] FetchResponse fetch(const FetchRequest& request) override;

  [[nodiscard]] const RetryPolicy& policy() const { return policy_; }
  [[nodiscard]] std::uint64_t retries() const { return retries_.value(); }
  [[nodiscard]] std::uint64_t failures() const { return failures_.value(); }
  [[nodiscard]] std::uint64_t corrupt_responses() const { return corrupt_.value(); }
  [[nodiscard]] std::uint64_t deadline_exceeded() const { return deadline_exceeded_.value(); }

 private:
  StorageService& inner_;
  RetryPolicy policy_;
  MetricsRegistry* metrics_;
  obs::TrafficLedger* ledger_;
  Counter retries_;
  Counter failures_;
  Counter corrupt_;
  Counter deadline_exceeded_;
};

}  // namespace sophon::net
