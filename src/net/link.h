// The simulated inter-cluster network link.
//
// Models the bandwidth-capped pipe between the storage cluster and the
// compute node (the paper throttles it to 500 Mbps): a FIFO serialising
// resource with a per-message latency. By default the link is healthy; wire
// in a net::FaultInjector to replay deterministic latency spikes and
// bandwidth dips per transfer (the fault model of docs/ARCHITECTURE.md).
// Used by the discrete-event trainer; also keeps cumulative traffic counters
// for the figures.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/units.h"

namespace sophon::net {

class FaultInjector;

class SimLink {
 public:
  SimLink(Bandwidth bandwidth, Seconds latency);

  /// Schedule a transfer that becomes ready at `ready`: it starts when the
  /// link frees up, occupies the link for size/bandwidth (stretched by an
  /// injected bandwidth dip, when faulty), and lands `latency` (plus any
  /// injected spike) after its last byte leaves. Returns the arrival time.
  Seconds schedule(Seconds ready, Bytes size);

  /// Borrow a fault injector consulted per transfer (nullptr = healthy
  /// link). The caller keeps it alive while the link is in use.
  void set_fault_injector(const FaultInjector* faults) { faults_ = faults; }

  [[nodiscard]] Bandwidth bandwidth() const { return bandwidth_; }
  [[nodiscard]] Seconds latency() const { return latency_; }

  /// Total bytes accepted since construction/reset.
  [[nodiscard]] Bytes traffic() const { return traffic_; }

  /// Cumulative time the link spent transmitting.
  [[nodiscard]] Seconds busy_time() const { return busy_; }

  /// Time at which the link next becomes free.
  [[nodiscard]] Seconds free_at() const { return free_at_; }

  /// Transfers whose timing an injected fault degraded since reset.
  [[nodiscard]] std::uint64_t faulted_transfers() const { return faulted_; }

  /// Record each transfer's [ready, arrival] interval so max_inflight() can
  /// answer how many requests contended for the link at once — the honesty
  /// check that prefetch and demand traffic share the same FIFO pipe rather
  /// than each getting a private one. Off by default: the record grows one
  /// entry per transfer, which the hot simulation loops do not want.
  void set_track_inflight(bool on) { track_inflight_ = on; }

  /// Peak number of simultaneously outstanding transfers (ready but not yet
  /// fully arrived) since reset. Requires set_track_inflight(true); returns
  /// 0 when tracking was off.
  [[nodiscard]] std::uint64_t max_inflight() const;

  /// Clear counters and availability (start of a new epoch/run). The fault
  /// injector stays wired, but its per-transfer index restarts, so an epoch
  /// replays the identical fault pattern.
  void reset();

 private:
  Bandwidth bandwidth_;
  Seconds latency_;
  Seconds free_at_;
  Bytes traffic_;
  Seconds busy_;
  const FaultInjector* faults_ = nullptr;
  std::uint64_t transfer_index_ = 0;
  std::uint64_t faulted_ = 0;
  bool track_inflight_ = false;
  std::vector<std::pair<double, double>> inflight_;  // (ready, arrival) per transfer
};

}  // namespace sophon::net
