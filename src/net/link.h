// The simulated inter-cluster network link.
//
// Models the bandwidth-capped pipe between the storage cluster and the
// compute node (the paper throttles it to 500 Mbps): a FIFO serialising
// resource with a per-message latency. Used by the discrete-event trainer;
// also keeps cumulative traffic counters for the figures.
#pragma once

#include "util/units.h"

namespace sophon::net {

class SimLink {
 public:
  SimLink(Bandwidth bandwidth, Seconds latency);

  /// Schedule a transfer that becomes ready at `ready`: it starts when the
  /// link frees up, occupies the link for size/bandwidth, and lands
  /// `latency` after its last byte leaves. Returns the arrival time.
  Seconds schedule(Seconds ready, Bytes size);

  [[nodiscard]] Bandwidth bandwidth() const { return bandwidth_; }
  [[nodiscard]] Seconds latency() const { return latency_; }

  /// Total bytes accepted since construction/reset.
  [[nodiscard]] Bytes traffic() const { return traffic_; }

  /// Cumulative time the link spent transmitting.
  [[nodiscard]] Seconds busy_time() const { return busy_; }

  /// Time at which the link next becomes free.
  [[nodiscard]] Seconds free_at() const { return free_at_; }

  /// Clear counters and availability (start of a new epoch/run).
  void reset();

 private:
  Bandwidth bandwidth_;
  Seconds latency_;
  Seconds free_at_;
  Bytes traffic_;
  Seconds busy_;
};

}  // namespace sophon::net
