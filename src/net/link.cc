#include "net/link.h"

#include <algorithm>

#include "net/fault.h"
#include "obs/trace.h"
#include "util/check.h"

namespace sophon::net {

SimLink::SimLink(Bandwidth bandwidth, Seconds latency) : bandwidth_(bandwidth), latency_(latency) {
  SOPHON_CHECK(bandwidth.bps() > 0.0);
  SOPHON_CHECK(latency.value() >= 0.0);
}

Seconds SimLink::schedule(Seconds ready, Bytes size) {
  SOPHON_CHECK(size.count() >= 0);
  const Seconds start = std::max(ready, free_at_);
  Seconds duration = bandwidth_.transfer_time(size);
  Seconds extra_latency;
  if (faults_ != nullptr) {
    const LinkFault fault = faults_->link_fault(transfer_index_++);
    if (fault.bandwidth_factor != 1.0 || fault.extra_latency.value() > 0.0) ++faulted_;
    duration = duration * fault.bandwidth_factor;
    extra_latency = fault.extra_latency;
  }
  free_at_ = start + duration;
  busy_ += duration;
  traffic_ += size;
  const Seconds arrival = free_at_ + latency_ + extra_latency;
  if (track_inflight_) inflight_.emplace_back(ready.value(), arrival.value());
  if (obs::Tracer& tracer = obs::global_tracer(); tracer.enabled()) {
    // The transmission interval in virtual time; FIFO serialisation means
    // consecutive spans on the link track never overlap.
    obs::SpanArgs args;
    args.bytes = static_cast<std::int64_t>(size.count());
    tracer.record_at(tracer.track("link"), obs::SpanCategory::kTransfer, "transfer", start,
                     free_at_, args);
  }
  return arrival;
}

std::uint64_t SimLink::max_inflight() const {
  // Sweep the interval endpoints: +1 at each ready, -1 at each arrival.
  std::vector<std::pair<double, int>> events;
  events.reserve(inflight_.size() * 2);
  for (const auto& [ready, arrival] : inflight_) {
    events.emplace_back(ready, +1);
    events.emplace_back(arrival, -1);
  }
  // Ties resolve departures first so a back-to-back handoff does not count
  // as overlap.
  std::sort(events.begin(), events.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;
  });
  std::uint64_t current = 0;
  std::uint64_t peak = 0;
  for (const auto& [time, delta] : events) {
    if (delta > 0) {
      ++current;
      peak = std::max(peak, current);
    } else {
      --current;
    }
  }
  return peak;
}

void SimLink::reset() {
  free_at_ = Seconds(0.0);
  traffic_ = Bytes(0);
  busy_ = Seconds(0.0);
  transfer_index_ = 0;
  faulted_ = 0;
  inflight_.clear();
}

}  // namespace sophon::net
