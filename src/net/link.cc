#include "net/link.h"

#include <algorithm>

#include "net/fault.h"
#include "util/check.h"

namespace sophon::net {

SimLink::SimLink(Bandwidth bandwidth, Seconds latency) : bandwidth_(bandwidth), latency_(latency) {
  SOPHON_CHECK(bandwidth.bps() > 0.0);
  SOPHON_CHECK(latency.value() >= 0.0);
}

Seconds SimLink::schedule(Seconds ready, Bytes size) {
  SOPHON_CHECK(size.count() >= 0);
  const Seconds start = std::max(ready, free_at_);
  Seconds duration = bandwidth_.transfer_time(size);
  Seconds extra_latency;
  if (faults_ != nullptr) {
    const LinkFault fault = faults_->link_fault(transfer_index_++);
    if (fault.bandwidth_factor != 1.0 || fault.extra_latency.value() > 0.0) ++faulted_;
    duration = duration * fault.bandwidth_factor;
    extra_latency = fault.extra_latency;
  }
  free_at_ = start + duration;
  busy_ += duration;
  traffic_ += size;
  return free_at_ + latency_ + extra_latency;
}

void SimLink::reset() {
  free_at_ = Seconds(0.0);
  traffic_ = Bytes(0);
  busy_ = Seconds(0.0);
  transfer_index_ = 0;
  faulted_ = 0;
}

}  // namespace sophon::net
