#include "net/link.h"

#include <algorithm>

#include "util/check.h"

namespace sophon::net {

SimLink::SimLink(Bandwidth bandwidth, Seconds latency) : bandwidth_(bandwidth), latency_(latency) {
  SOPHON_CHECK(bandwidth.bps() > 0.0);
  SOPHON_CHECK(latency.value() >= 0.0);
}

Seconds SimLink::schedule(Seconds ready, Bytes size) {
  SOPHON_CHECK(size.count() >= 0);
  const Seconds start = std::max(ready, free_at_);
  const Seconds duration = bandwidth_.transfer_time(size);
  free_at_ = start + duration;
  busy_ += duration;
  traffic_ += size;
  return free_at_ + latency_;
}

void SimLink::reset() {
  free_at_ = Seconds(0.0);
  traffic_ = Bytes(0);
  busy_ = Seconds(0.0);
}

}  // namespace sophon::net
