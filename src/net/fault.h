// Deterministic fault injection for the fetch path.
//
// A FaultInjector is a seeded policy object that decides, purely from stable
// keys (sample id, epoch, attempt number, link-transfer index), which fetch
// attempts fail and which link transfers degrade. Because every decision is a
// hash of (seed, keys) — never of wall clock or thread interleaving — a fault
// scenario replays bit-identically across runs, worker counts, and between
// the real RPC path and the discrete-event simulator. SimLink consults it for
// latency spikes and bandwidth dips; FaultyStorageService consults it to turn
// fetches into transient/permanent errors or corrupted payloads; the sim-side
// replay hook (sim::faulty_flow) consults the same draws to quantify
// epoch-time impact of an identical fault trace.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "net/rpc.h"
#include "util/units.h"

namespace sophon::net {

/// What the injector did to one fetch attempt.
enum class FaultKind : std::uint8_t {
  kNone,       // attempt succeeds
  kTransient,  // attempt fails; a retry may succeed
  kPermanent,  // every attempt for this sample fails (sticky per sample)
  kCorrupt,    // attempt returns a mangled payload (detectable, retryable)
};

/// The fault scenario: independent per-attempt probabilities plus link
/// degradation. All draws are derived from `seed`; the same profile + seed
/// always produces the same fault trace.
struct FaultProfile {
  double transient_fail_prob = 0.0;  // per attempt
  double permanent_fail_prob = 0.0;  // per sample (sticky across attempts)
  double corrupt_prob = 0.0;         // per attempt
  /// When set, fetch faults only hit offloaded requests (prefix_len > 0) —
  /// models a storage node whose preprocessing engine is struggling while
  /// its raw read path stays healthy (the degradation escape hatch).
  bool offload_only = false;

  double latency_spike_prob = 0.0;   // per link transfer
  Seconds latency_spike = Seconds::millis(50.0);
  double bandwidth_dip_prob = 0.0;   // per link transfer
  double bandwidth_dip_factor = 4.0;  // transfer-time multiplier (>= 1)

  std::uint64_t seed = 0;
};

/// Link-side degradation of one transfer. `bandwidth_factor` multiplies the
/// transfer time (1.0 = healthy); `extra_latency` lands after the last byte.
struct LinkFault {
  Seconds extra_latency;
  double bandwidth_factor = 1.0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultProfile profile);

  [[nodiscard]] const FaultProfile& profile() const { return profile_; }

  /// True when any fault probability is nonzero.
  [[nodiscard]] bool enabled() const;

  /// Fate of attempt `attempt` (0-based) of the fetch for (epoch, sample).
  /// Pure function of (seed, keys): thread-safe, replayable. Permanent
  /// faults are drawn per sample and dominate; corruption and transient
  /// failure are independent per-attempt draws (corruption dominates).
  [[nodiscard]] FaultKind fetch_fault(std::uint64_t sample_id, std::uint64_t epoch,
                                      std::uint32_t attempt, bool offloaded) const;

  /// Degradation of the `transfer_index`-th link transfer.
  [[nodiscard]] LinkFault link_fault(std::uint64_t transfer_index) const;

 private:
  FaultProfile profile_;
};

/// StorageService decorator that applies a FaultInjector to a real service:
/// throws FetchError for failed attempts and mangles payloads for corrupt
/// ones. Tracks the attempt number per (epoch, sample) internally, so the
/// retrying caller (ResilientStorageService) needs no protocol change.
class FaultyStorageService final : public StorageService {
 public:
  /// Borrows both; keep them alive while the service is in use.
  FaultyStorageService(StorageService& inner, const FaultInjector& faults);

  /// Throws FetchError(kTransient|kPermanent) on injected failures; returns
  /// a frame-invalid payload on injected corruption.
  [[nodiscard]] FetchResponse fetch(const FetchRequest& request) override;

  [[nodiscard]] std::uint64_t injected_failures() const;
  [[nodiscard]] std::uint64_t injected_corruptions() const;

 private:
  StorageService& inner_;
  const FaultInjector& faults_;
  mutable std::mutex mutex_;
  // Next attempt number per (epoch, sample): keyed on request identity so
  // the fault sequence is independent of worker scheduling.
  std::unordered_map<std::uint64_t, std::uint32_t> attempts_;
  std::uint64_t failures_ = 0;
  std::uint64_t corruptions_ = 0;
};

}  // namespace sophon::net
