#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/check.h"

namespace sophon {

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::as_bool() const {
  SOPHON_CHECK(type_ == Type::kBool);
  return bool_;
}

double Json::as_number() const {
  SOPHON_CHECK(type_ == Type::kNumber);
  return number_;
}

std::int64_t Json::as_int() const {
  SOPHON_CHECK(type_ == Type::kNumber);
  const auto i = static_cast<std::int64_t>(number_);
  SOPHON_CHECK_MSG(static_cast<double>(i) == number_, "number is not integral");
  return i;
}

const std::string& Json::as_string() const {
  SOPHON_CHECK(type_ == Type::kString);
  return string_;
}

void Json::push_back(Json value) {
  SOPHON_CHECK(type_ == Type::kArray);
  array_.push_back(std::move(value));
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  SOPHON_CHECK_MSG(false, "size() on a scalar");
  return 0;
}

const Json& Json::at(std::size_t index) const {
  SOPHON_CHECK(type_ == Type::kArray);
  SOPHON_CHECK(index < array_.size());
  return array_[index];
}

void Json::set(const std::string& key, Json value) {
  SOPHON_CHECK(type_ == Type::kObject);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

bool Json::has(const std::string& key) const {
  SOPHON_CHECK(type_ == Type::kObject);
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::at(const std::string& key) const {
  SOPHON_CHECK(type_ == Type::kObject);
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  SOPHON_CHECK_MSG(false, "missing key: " + key);
  static const Json kNull;
  return kNull;
}

const std::vector<std::pair<std::string, Json>>& Json::items() const {
  SOPHON_CHECK(type_ == Type::kObject);
  return object_;
}

namespace {

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_into(std::string& out, double v) {
  SOPHON_CHECK_MSG(std::isfinite(v), "JSON numbers must be finite");
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      number_into(out, number_);
      return;
    case Type::kString:
      escape_into(out, string_);
      return;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        newline_indent(out, indent, depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        newline_indent(out, indent, depth + 1);
        escape_into(out, object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull:
      return true;
    case Json::Type::kBool:
      return a.bool_ == b.bool_;
    case Json::Type::kNumber:
      return a.number_ == b.number_;
    case Json::Type::kString:
      return a.string_ == b.string_;
    case Json::Type::kArray:
      return a.array_ == b.array_;
    case Json::Type::kObject:
      return a.object_ == b.object_;
  }
  return false;
}

// ---- parser ---------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> run() {
    skip_ws();
    auto value = parse_value();
    if (!value) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume(char expected) {
    if (eof() || text_[pos_] != expected) return false;
    ++pos_;
    return true;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::optional<Json> parse_value() {
    if (eof()) return std::nullopt;
    switch (peek()) {
      case 'n':
        return consume_literal("null") ? std::optional<Json>(Json()) : std::nullopt;
      case 't':
        return consume_literal("true") ? std::optional<Json>(Json(true)) : std::nullopt;
      case 'f':
        return consume_literal("false") ? std::optional<Json>(Json(false)) : std::nullopt;
      case '"':
        return parse_string_value();
      case '[':
        return parse_array();
      case '{':
        return parse_object();
      default:
        return parse_number();
    }
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (eof()) return std::nullopt;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return std::nullopt;
            }
            // Basic-multilingual-plane only; encode as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default:
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> parse_string_value() {
    auto s = parse_string();
    if (!s) return std::nullopt;
    return Json(std::move(*s));
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    bool digits = false;
    while (!eof() && peek() >= '0' && peek() <= '9') {
      ++pos_;
      digits = true;
    }
    if (!digits) return std::nullopt;
    if (!eof() && peek() == '.') {
      ++pos_;
      bool frac = false;
      while (!eof() && peek() >= '0' && peek() <= '9') {
        ++pos_;
        frac = true;
      }
      if (!frac) return std::nullopt;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      bool exp = false;
      while (!eof() && peek() >= '0' && peek() <= '9') {
        ++pos_;
        exp = true;
      }
      if (!exp) return std::nullopt;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    return Json(value);
  }

  std::optional<Json> parse_array() {
    if (!consume('[')) return std::nullopt;
    Json out = Json::array();
    skip_ws();
    if (consume(']')) return out;
    for (;;) {
      skip_ws();
      auto value = parse_value();
      if (!value) return std::nullopt;
      out.push_back(std::move(*value));
      skip_ws();
      if (consume(']')) return out;
      if (!consume(',')) return std::nullopt;
    }
  }

  std::optional<Json> parse_object() {
    if (!consume('{')) return std::nullopt;
    Json out = Json::object();
    skip_ws();
    if (consume('}')) return out;
    for (;;) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      skip_ws();
      auto value = parse_value();
      if (!value) return std::nullopt;
      out.set(*key, std::move(*value));
      skip_ws();
      if (consume('}')) return out;
      if (!consume(',')) return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace sophon
