// Summary statistics used by the profiler and the benchmark harness.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace sophon {

/// Single-pass running statistics (Welford). Numerically stable mean and
/// variance without storing samples; used for per-op cost aggregation.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator). Zero for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile of a sample set with linear interpolation between ranks.
/// `q` in [0, 1]. Copies and sorts; intended for reporting, not hot paths.
[[nodiscard]] double percentile(std::vector<double> values, double q);

/// Convenience: median of a sample set.
[[nodiscard]] double median(std::vector<double> values);

}  // namespace sophon
