// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — the integrity check the
// packed shard format stores per entry. Table-driven, byte-at-a-time: fast
// enough for multi-megabyte payloads, and the polynomial matches zlib/PNG
// so shard files can be cross-checked with standard tooling.
#pragma once

#include <cstdint>
#include <span>

namespace sophon {

/// CRC-32 of `data`. Pass a previous result as `seed` to checksum a stream
/// in chunks: crc32(b, crc32(a)) == crc32(ab).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed = 0);

}  // namespace sophon
