#include "util/table.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace sophon {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  SOPHON_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  SOPHON_CHECK_MSG(row.size() == header_.size(), "row arity must match header");
  rows_.push_back(std::move(row));
}

namespace {
bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  bool digit_seen = false;
  for (const char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c))) digit_seen = true;
    else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' && c != 'x' && c != '%' &&
             c != ' ')
      return false;
  }
  return digit_seen;
}
}  // namespace

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << "  ";
      const auto pad = width[c] - row[c].size();
      if (looks_numeric(row[c])) {
        os << std::string(pad, ' ') << row[c];
      } else {
        os << row[c] << std::string(pad, ' ');
      }
    }
    os << '\n';
  };

  emit_row(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < width.size(); ++c) rule += width[c] + (c > 0 ? 2 : 0);
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[512];
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

}  // namespace sophon
