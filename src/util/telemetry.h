// Lightweight process telemetry: named counters, gauges, duration
// accumulators and fixed-bucket latency histograms behind one registry, with
// a Prometheus-style text exposition. The CLI tool, the resilience layer and
// long-running examples use this to report what the run actually did
// (fetches, retries, bytes moved, preprocess time) without threading bespoke
// counters through every call site.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/stats.h"
#include "util/units.h"

namespace sophon {

/// Monotonically increasing counter. Thread-safe.
class Counter {
 public:
  void increment(std::uint64_t by = 1) { value_.fetch_add(by, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins gauge. Thread-safe.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }

  /// Raise the gauge to `value` if it is below it — a monotonic high-water
  /// mark under concurrent writers. Mixing set() and set_max() on one gauge
  /// forfeits the monotonicity, not the atomicity.
  void set_max(double value) {
    double current = value_.load(std::memory_order_relaxed);
    while (current < value &&
           !value_.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Duration accumulator: count / total / mean / min / max of observed spans.
class DurationStat {
 public:
  void observe(Seconds duration);
  [[nodiscard]] RunningStats snapshot() const;

 private:
  mutable std::mutex mutex_;
  RunningStats stats_;
};

/// Fixed-bucket latency histogram with Prometheus read semantics: observe()
/// files a duration into the one bucket it falls in, and cumulative() /
/// expose() fold the per-bucket counts into the cumulative "observations
/// <= bound" form Prometheus expects. Bounds are fixed at construction;
/// thread-safe.
class HistogramStat {
 public:
  /// `bounds` are the buckets' inclusive upper edges in seconds, strictly
  /// increasing; an implicit +Inf bucket catches the rest.
  explicit HistogramStat(std::vector<double> bounds);

  /// Log-spaced defaults covering 100 µs .. 10 s, the range fetch backoffs
  /// and stalls land in.
  static std::vector<double> default_bounds();

  void observe(Seconds duration);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Observations <= bounds()[i] (cumulative, excludes the +Inf bucket).
  [[nodiscard]] std::uint64_t cumulative(std::size_t bucket) const;

 private:
  std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> counts_;  // per-bucket (non-cumulative), +Inf last
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Point-in-time copy of a registry's values, cheap to take and subtract.
/// Lets a bench or an epoch report measure "this interval only" against a
/// shared registry without resetting global state under concurrent writers.
struct MetricsSnapshot {
  /// count/sum pair shared by durations and histograms.
  struct Dist {
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Dist> durations;
  std::map<std::string, Dist> histograms;
};

/// later - earlier, per metric: counters, duration and histogram count/sum
/// subtract (clamped at zero for metrics born after `earlier`); gauges are
/// instantaneous, so the delta keeps the later value.
[[nodiscard]] MetricsSnapshot snapshot_delta(const MetricsSnapshot& later,
                                             const MetricsSnapshot& earlier);

/// Named-metric registry. Metric objects are created on first use and live
/// as long as the registry; returned references stay valid.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] DurationStat& duration(const std::string& name);
  [[nodiscard]] HistogramStat& histogram(const std::string& name);

  /// Attach a `# HELP` string to a metric name (any kind); expose() falls
  /// back to a generated one when none was set.
  void set_help(const std::string& name, std::string help);

  /// Prometheus text exposition, families sorted for diffability. Each
  /// family gets `# HELP`/`# TYPE` lines; counters expose `<name>_total`,
  /// durations a `<name>_seconds` summary (with min/max as companion
  /// gauges), histograms cumulative `_bucket{le=...}` samples ending in
  /// `+Inf` plus `_sum`/`_count`.
  [[nodiscard]] std::string expose() const;

  /// Copy out every metric's current value (gauges last-written, counters
  /// and distributions cumulative since construction).
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<DurationStat>> durations_;
  std::map<std::string, std::unique_ptr<HistogramStat>> histograms_;
  std::map<std::string, std::string> help_;
};

/// RAII span timer feeding a DurationStat with wall-clock time.
class ScopedTimer {
 public:
  explicit ScopedTimer(DurationStat& stat);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  DurationStat& stat_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sophon
