// Deterministic random number generation.
//
// Everything in this repo that is "random" — synthetic image content, dataset
// catalogs, shuffling, augmentation — must be reproducible from a seed so the
// benchmark harness regenerates identical tables run-to-run. We therefore use
// our own small generators (SplitMix64 for seeding / key derivation,
// xoshiro256** for streams) instead of std::mt19937, whose distributions are
// not portable across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace sophon {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used to derive independent
/// seeds and to hash (seed, key) pairs into stable per-object streams.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Mix a base seed with a stream key so distinct keys yield statistically
/// independent generators (e.g. one stream per sample id).
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base, std::uint64_t key);

/// Mix a base seed with a string label (e.g. "shuffle", "augment").
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base, std::string_view label);

/// xoshiro256** 1.0 — fast, 256-bit state, passes BigCrush. Satisfies
/// UniformRandomBitGenerator so it also plugs into <random> if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with probability `p` of returning true.
  bool bernoulli(double p);

  /// Standard normal via Box–Muller (deterministic; caches the spare value).
  double normal();
  double normal(double mean, double stddev);

  /// Log-normal: exp(N(mu, sigma)). Natural fit for file-size distributions.
  double lognormal(double mu, double sigma);

 private:
  std::array<std::uint64_t, 4> s_{};
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace sophon
