#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/check.h"
#include "util/stats.h"

namespace sophon {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  SOPHON_CHECK(hi > lo);
  SOPHON_CHECK(buckets > 0);
}

void Histogram::add(double value) {
  SOPHON_CHECK_MSG(std::isfinite(value), "histogram values must be finite");
  const double span = hi_ - lo_;
  auto idx = static_cast<std::ptrdiff_t>((value - lo_) / span * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bucket) const {
  SOPHON_CHECK(bucket < counts_.size());
  return counts_[bucket];
}

double Histogram::bucket_lo(std::size_t bucket) const {
  SOPHON_CHECK(bucket < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bucket) / static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(std::size_t bucket) const {
  return bucket_lo(bucket) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::fraction(std::size_t bucket) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bucket)) / static_cast<double>(total_);
}

std::string Histogram::ascii(std::size_t max_width) const {
  std::size_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char label[64];
    std::snprintf(label, sizeof(label), "[%10.3g, %10.3g) ", bucket_lo(i), bucket_hi(i));
    os << label;
    const auto bar = counts_[i] * max_width / peak;
    for (std::size_t j = 0; j < bar; ++j) os << '#';
    os << "  " << counts_[i] << '\n';
  }
  return os.str();
}

void EmpiricalCdf::add(double value) {
  SOPHON_CHECK_MSG(std::isfinite(value), "CDF values must be finite");
  values_.push_back(value);
  sorted_ = false;
}

void EmpiricalCdf::add_all(const std::vector<double>& values) {
  for (const auto value : values) add(value);
}

void EmpiricalCdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::fraction_at_or_below(double x) const {
  SOPHON_CHECK(!values_.empty());
  ensure_sorted();
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) / static_cast<double>(values_.size());
}

double EmpiricalCdf::quantile(double q) const {
  SOPHON_CHECK(!values_.empty());
  ensure_sorted();
  return percentile(values_, q);
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(std::size_t points) const {
  SOPHON_CHECK(!values_.empty());
  SOPHON_CHECK(points >= 2);
  ensure_sorted();
  const double lo = values_.front();
  const double hi = values_.back();
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, fraction_at_or_below(x));
  }
  return out;
}

}  // namespace sophon
