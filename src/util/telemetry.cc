#include "util/telemetry.h"

#include <chrono>
#include <sstream>

namespace sophon {

void DurationStat::observe(Seconds duration) {
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_.add(duration.value());
}

RunningStats DurationStat::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

DurationStat& MetricsRegistry::duration(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = durations_[name];
  if (!slot) slot = std::make_unique<DurationStat>();
  return *slot;
}

std::string MetricsRegistry::expose() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) {
    os << name << "_total " << counter->value() << '\n';
  }
  for (const auto& [name, gauge] : gauges_) {
    os << name << ' ' << gauge->value() << '\n';
  }
  for (const auto& [name, duration] : durations_) {
    const auto stats = duration->snapshot();
    os << name << "_seconds_count " << stats.count() << '\n';
    os << name << "_seconds_sum " << stats.sum() << '\n';
    if (stats.count() > 0) {
      os << name << "_seconds_min " << stats.min() << '\n';
      os << name << "_seconds_max " << stats.max() << '\n';
    }
  }
  return os.str();
}

ScopedTimer::ScopedTimer(DurationStat& stat)
    : stat_(stat), start_(std::chrono::steady_clock::now()) {}

ScopedTimer::~ScopedTimer() {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  stat_.observe(Seconds(std::chrono::duration<double>(elapsed).count()));
}

}  // namespace sophon
