#include "util/telemetry.h"

#include <chrono>
#include <sstream>
#include <stdexcept>

namespace sophon {

void DurationStat::observe(Seconds duration) {
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_.add(duration.value());
}

RunningStats DurationStat::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

HistogramStat::HistogramStat(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("histogram bounds must be strictly increasing");
    }
  }
  counts_.assign(bounds_.size() + 1, 0);  // trailing +Inf bucket
}

std::vector<double> HistogramStat::default_bounds() {
  return {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0};
}

void HistogramStat::observe(Seconds duration) {
  const double v = duration.value();
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t bucket = bounds_.size();  // +Inf
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++count_;
  sum_ += v;
}

std::uint64_t HistogramStat::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double HistogramStat::sum() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

std::uint64_t HistogramStat::cumulative(std::size_t bucket) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bucket && i < counts_.size(); ++i) total += counts_[i];
  return total;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

DurationStat& MetricsRegistry::duration(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = durations_[name];
  if (!slot) slot = std::make_unique<DurationStat>();
  return *slot;
}

HistogramStat& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<HistogramStat>(HistogramStat::default_bounds());
  return *slot;
}

void MetricsRegistry::set_help(const std::string& name, std::string help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  help_[name] = std::move(help);
}

namespace {

// One `# HELP` + `# TYPE` header per metric family, as the Prometheus text
// format requires before the family's first sample line.
void family_header(std::ostringstream& os, const std::map<std::string, std::string>& help,
                   const std::string& registered_name, const std::string& family_name,
                   const char* type, const char* fallback_help) {
  const auto it = help.find(registered_name);
  os << "# HELP " << family_name << ' '
     << (it != help.end() ? it->second.c_str() : fallback_help) << '\n';
  os << "# TYPE " << family_name << ' ' << type << '\n';
}

}  // namespace

std::string MetricsRegistry::expose() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) {
    family_header(os, help_, name, name + "_total", "counter", "Monotonic event count.");
    os << name << "_total " << counter->value() << '\n';
  }
  for (const auto& [name, gauge] : gauges_) {
    family_header(os, help_, name, name, "gauge", "Last-written value.");
    os << name << ' ' << gauge->value() << '\n';
  }
  for (const auto& [name, duration] : durations_) {
    const auto stats = duration->snapshot();
    family_header(os, help_, name, name + "_seconds", "summary",
                  "Accumulated span durations in seconds.");
    os << name << "_seconds_count " << stats.count() << '\n';
    os << name << "_seconds_sum " << stats.sum() << '\n';
    if (stats.count() > 0) {
      family_header(os, help_, name, name + "_seconds_min", "gauge",
                    "Shortest observed span in seconds.");
      os << name << "_seconds_min " << stats.min() << '\n';
      family_header(os, help_, name, name + "_seconds_max", "gauge",
                    "Longest observed span in seconds.");
      os << name << "_seconds_max " << stats.max() << '\n';
    }
  }
  for (const auto& [name, histogram] : histograms_) {
    family_header(os, help_, name, name, "histogram", "Span duration distribution in seconds.");
    const auto& bounds = histogram->bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      os << name << "_bucket{le=\"" << bounds[i] << "\"} " << histogram->cumulative(i) << '\n';
    }
    os << name << "_bucket{le=\"+Inf\"} " << histogram->count() << '\n';
    os << name << "_count " << histogram->count() << '\n';
    os << name << "_sum " << histogram->sum() << '\n';
  }
  return os.str();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) snap.counters[name] = counter->value();
  for (const auto& [name, gauge] : gauges_) snap.gauges[name] = gauge->value();
  for (const auto& [name, duration] : durations_) {
    const auto stats = duration->snapshot();
    snap.durations[name] = {stats.count(), stats.sum()};
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = {histogram->count(), histogram->sum()};
  }
  return snap;
}

MetricsSnapshot snapshot_delta(const MetricsSnapshot& later, const MetricsSnapshot& earlier) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : later.counters) {
    const auto it = earlier.counters.find(name);
    const std::uint64_t base = it != earlier.counters.end() ? it->second : 0;
    delta.counters[name] = value >= base ? value - base : 0;
  }
  delta.gauges = later.gauges;  // instantaneous: the delta is the current reading
  const auto dist_delta = [](const MetricsSnapshot::Dist& now,
                             const MetricsSnapshot::Dist* base) {
    MetricsSnapshot::Dist d;
    if (base == nullptr) return now;
    d.count = now.count >= base->count ? now.count - base->count : 0;
    d.sum = now.sum >= base->sum ? now.sum - base->sum : 0.0;
    return d;
  };
  for (const auto& [name, value] : later.durations) {
    const auto it = earlier.durations.find(name);
    delta.durations[name] = dist_delta(value, it != earlier.durations.end() ? &it->second : nullptr);
  }
  for (const auto& [name, value] : later.histograms) {
    const auto it = earlier.histograms.find(name);
    delta.histograms[name] =
        dist_delta(value, it != earlier.histograms.end() ? &it->second : nullptr);
  }
  return delta;
}

ScopedTimer::ScopedTimer(DurationStat& stat)
    : stat_(stat), start_(std::chrono::steady_clock::now()) {}

ScopedTimer::~ScopedTimer() {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  stat_.observe(Seconds(std::chrono::duration<double>(elapsed).count()));
}

}  // namespace sophon
