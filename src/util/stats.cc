#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace sophon {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::mean() const {
  return count_ == 0 ? 0.0 : mean_;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const {
  return std::sqrt(variance());
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> values, double q) {
  SOPHON_CHECK(!values.empty());
  SOPHON_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double median(std::vector<double> values) {
  return percentile(std::move(values), 0.5);
}

}  // namespace sophon
