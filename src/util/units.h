// Strong unit types for the quantities SOPHON reasons about: byte counts,
// simulated time, and link bandwidth. Keeping these as distinct types (rather
// than bare doubles) prevents the classic bytes-vs-bits and seconds-vs-ms
// mix-ups that plague bandwidth math.
#pragma once

#include <cstdint>
#include <string>

namespace sophon {

/// A byte count. Value type; arithmetic saturates at the int64 range in
/// practice (datasets here are far below exabytes).
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::int64_t count) : count_(count) {}

  [[nodiscard]] constexpr std::int64_t count() const { return count_; }
  [[nodiscard]] constexpr double as_double() const { return static_cast<double>(count_); }

  constexpr Bytes& operator+=(Bytes other) {
    count_ += other.count_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes other) {
    count_ -= other.count_;
    return *this;
  }

  friend constexpr Bytes operator+(Bytes a, Bytes b) { return Bytes(a.count_ + b.count_); }
  friend constexpr Bytes operator-(Bytes a, Bytes b) { return Bytes(a.count_ - b.count_); }
  friend constexpr Bytes operator*(Bytes a, std::int64_t k) { return Bytes(a.count_ * k); }
  friend constexpr Bytes operator*(std::int64_t k, Bytes a) { return Bytes(a.count_ * k); }
  friend constexpr double operator/(Bytes a, Bytes b) { return a.as_double() / b.as_double(); }
  friend constexpr auto operator<=>(Bytes a, Bytes b) = default;

  /// Helpers for readable literals in tests and configs.
  static constexpr Bytes kib(std::int64_t n) { return Bytes(n * 1024); }
  static constexpr Bytes mib(std::int64_t n) { return Bytes(n * 1024 * 1024); }
  static constexpr Bytes gib(std::int64_t n) { return Bytes(n * 1024 * 1024 * 1024); }

 private:
  std::int64_t count_ = 0;
};

/// Simulated wall-clock time in seconds (double precision is ample for the
/// micro-to-kilosecond range the simulator covers).
class Seconds {
 public:
  constexpr Seconds() = default;
  constexpr explicit Seconds(double value) : value_(value) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  constexpr Seconds& operator+=(Seconds other) {
    value_ += other.value_;
    return *this;
  }
  constexpr Seconds& operator-=(Seconds other) {
    value_ -= other.value_;
    return *this;
  }

  friend constexpr Seconds operator+(Seconds a, Seconds b) { return Seconds(a.value_ + b.value_); }
  friend constexpr Seconds operator-(Seconds a, Seconds b) { return Seconds(a.value_ - b.value_); }
  friend constexpr Seconds operator*(Seconds a, double k) { return Seconds(a.value_ * k); }
  friend constexpr Seconds operator*(double k, Seconds a) { return Seconds(a.value_ * k); }
  friend constexpr Seconds operator/(Seconds a, double k) { return Seconds(a.value_ / k); }
  friend constexpr double operator/(Seconds a, Seconds b) { return a.value_ / b.value_; }
  friend constexpr auto operator<=>(Seconds a, Seconds b) = default;

  static constexpr Seconds millis(double ms) { return Seconds(ms / 1e3); }
  static constexpr Seconds micros(double us) { return Seconds(us / 1e6); }
  static constexpr Seconds nanos(double ns) { return Seconds(ns / 1e9); }

 private:
  double value_ = 0.0;
};

/// Link bandwidth. Stored in bits per second because network capacities are
/// universally quoted in bits (the paper caps the link at 500 Mbps).
class Bandwidth {
 public:
  constexpr Bandwidth() = default;

  static constexpr Bandwidth bits_per_sec(double bps) { return Bandwidth(bps); }
  static constexpr Bandwidth mbps(double m) { return Bandwidth(m * 1e6); }
  static constexpr Bandwidth gbps(double g) { return Bandwidth(g * 1e9); }

  [[nodiscard]] constexpr double bps() const { return bits_per_sec_; }
  [[nodiscard]] constexpr double bytes_per_sec() const { return bits_per_sec_ / 8.0; }

  /// Time to move `payload` over this link at full rate (no latency).
  [[nodiscard]] constexpr Seconds transfer_time(Bytes payload) const {
    return Seconds(payload.as_double() / bytes_per_sec());
  }

  friend constexpr auto operator<=>(Bandwidth a, Bandwidth b) = default;

 private:
  constexpr explicit Bandwidth(double bps) : bits_per_sec_(bps) {}
  double bits_per_sec_ = 0.0;
};

/// Render a byte count with a binary-unit suffix, e.g. "1.4 MiB".
std::string human_bytes(Bytes b);

/// Render a duration with an adaptive unit, e.g. "3.2 ms" or "71.5 s".
std::string human_seconds(Seconds s);

/// Render a bandwidth, e.g. "500.0 Mbps".
std::string human_bandwidth(Bandwidth bw);

}  // namespace sophon
