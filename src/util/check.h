// Lightweight runtime contract checking.
//
// SOPHON_CHECK is used to enforce preconditions and invariants on public
// interfaces (Core Guidelines I.6/I.8). Violations throw, so tests can
// assert on them; they are never compiled out because the checks guard
// logic errors, not hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sophon {

/// Thrown when a SOPHON_CHECK contract is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "contract violated: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace sophon

#define SOPHON_CHECK(expr)                                                 \
  do {                                                                     \
    if (!(expr)) ::sophon::detail::check_failed(#expr, __FILE__, __LINE__, \
                                                std::string());            \
  } while (0)

#define SOPHON_CHECK_MSG(expr, msg)                                        \
  do {                                                                     \
    if (!(expr)) ::sophon::detail::check_failed(#expr, __FILE__, __LINE__, \
                                                (msg));                    \
  } while (0)
