#include "util/units.h"

#include <cmath>
#include <cstdio>

namespace sophon {

namespace {
std::string fmt(double v, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, suffix);
  return buf;
}
}  // namespace

std::string human_bytes(Bytes b) {
  const double v = std::abs(b.as_double());
  const double sign = b.count() < 0 ? -1.0 : 1.0;
  if (v < 1024.0) return fmt(sign * v, "B");
  if (v < 1024.0 * 1024.0) return fmt(sign * v / 1024.0, "KiB");
  if (v < 1024.0 * 1024.0 * 1024.0) return fmt(sign * v / (1024.0 * 1024.0), "MiB");
  return fmt(sign * v / (1024.0 * 1024.0 * 1024.0), "GiB");
}

std::string human_seconds(Seconds s) {
  const double v = std::abs(s.value());
  const double sign = s.value() < 0 ? -1.0 : 1.0;
  if (v < 1e-6) return fmt(sign * v * 1e9, "ns");
  if (v < 1e-3) return fmt(sign * v * 1e6, "us");
  if (v < 1.0) return fmt(sign * v * 1e3, "ms");
  return fmt(sign * v, "s");
}

std::string human_bandwidth(Bandwidth bw) {
  const double v = bw.bps();
  if (v < 1e6) return fmt(v / 1e3, "Kbps");
  if (v < 1e9) return fmt(v / 1e6, "Mbps");
  return fmt(v / 1e9, "Gbps");
}

}  // namespace sophon
