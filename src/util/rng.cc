#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace sophon {

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t key) {
  SplitMix64 mixer(base ^ (key * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL));
  // Burn one output so base and derived streams do not share a prefix.
  mixer.next();
  return mixer.next();
}

std::uint64_t derive_seed(std::uint64_t base, std::string_view label) {
  // FNV-1a over the label, then mix with the base seed.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return derive_seed(base, h);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 mixer(seed);
  for (auto& word : s_) word = mixer.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  SOPHON_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SOPHON_CHECK(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit span
  // Debiased modulo via rejection sampling.
  const std::uint64_t limit = ~static_cast<std::uint64_t>(0) - (~static_cast<std::uint64_t>(0) % range);
  std::uint64_t draw = next();
  while (draw >= limit) draw = next();
  return lo + static_cast<std::int64_t>(draw % range);
}

bool Rng::bernoulli(double p) {
  return uniform() < p;
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();  // avoid log(0)
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  spare_ = mag * std::sin(kTwoPi * u2);
  has_spare_ = true;
  return mag * std::cos(kTwoPi * u2);
}

double Rng::normal(double mean, double stddev) {
  SOPHON_CHECK(stddev >= 0.0);
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

}  // namespace sophon
