// Minimal JSON value type, writer and parser.
//
// SOPHON persists profiling artifacts (stage-2 sample profiles, offload
// plans) so a long training job can reuse its first-epoch measurements
// across restarts. The subset implemented is exactly what those artifacts
// need: null, bool, finite doubles, strings, arrays, objects — strict
// parsing, deterministic serialisation (object keys keep insertion order).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sophon {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT(google-explicit-constructor)
  Json(double n) : type_(Type::kNumber), number_(n) {}  // NOLINT(google-explicit-constructor)
  Json(int n) : Json(static_cast<double>(n)) {}  // NOLINT(google-explicit-constructor)
  Json(std::int64_t n) : Json(static_cast<double>(n)) {}  // NOLINT(google-explicit-constructor)
  Json(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT(google-explicit-constructor)
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT(google-explicit-constructor)

  static Json array();
  static Json object();

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; contract-checked against the actual type.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;  // number, checked integral
  [[nodiscard]] const std::string& as_string() const;

  // --- arrays ---
  void push_back(Json value);
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Json& at(std::size_t index) const;

  // --- objects ---
  void set(const std::string& key, Json value);
  [[nodiscard]] bool has(const std::string& key) const;
  /// Contract-checked lookup.
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& items() const;

  /// Serialise. `indent` > 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Strict parse of a complete document. nullopt on any syntax error or
  /// trailing garbage.
  [[nodiscard]] static std::optional<Json> parse(std::string_view text);

  friend bool operator==(const Json& a, const Json& b);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace sophon
