// Fixed-bucket histograms and empirical CDFs for the analysis figures
// (Fig 1b stage distribution, Fig 1c efficiency CDF).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sophon {

/// Uniform-bucket histogram over [lo, hi). Values outside the range land in
/// saturating edge buckets so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double value);

  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bucket) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  /// Inclusive lower edge of a bucket.
  [[nodiscard]] double bucket_lo(std::size_t bucket) const;
  [[nodiscard]] double bucket_hi(std::size_t bucket) const;

  /// Fraction of samples in the bucket (0 when empty).
  [[nodiscard]] double fraction(std::size_t bucket) const;

  /// Render as a fixed-width ASCII bar chart for bench output.
  [[nodiscard]] std::string ascii(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Empirical CDF: stores points, answers quantile and fraction-below queries,
/// and renders evenly spaced (x, F(x)) rows for figure reproduction.
class EmpiricalCdf {
 public:
  void add(double value);
  void add_all(const std::vector<double>& values);

  [[nodiscard]] std::size_t size() const { return values_.size(); }

  /// Fraction of samples <= x.
  [[nodiscard]] double fraction_at_or_below(double x) const;

  /// Value at quantile q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

  /// `points` evenly spaced rows spanning the sample range: (x, F(x)).
  [[nodiscard]] std::vector<std::pair<double, double>> curve(std::size_t points) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

}  // namespace sophon
