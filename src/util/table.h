// Aligned plain-text table rendering for the benchmark harness — every
// figure/table bench prints its rows through this so outputs are uniform and
// easy to diff against EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace sophon {

/// Column-aligned text table. Cells are strings; numeric formatting is the
/// caller's job (benches format with the precision the paper reports).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Render with a header rule, two-space column gutters, right-aligned
  /// numeric-looking cells, left-aligned text cells.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string (benches use it for cells).
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace sophon
