// Simulated compute resources.
//
// A CpuPool is a work-conserving c-server queue over a simulated clock:
// jobs start on the earliest-free core no earlier than their ready time.
// This is the discrete-event backbone for both the storage node's and the
// compute node's preprocessing CPUs.
#pragma once

#include <queue>
#include <vector>

#include "util/units.h"

namespace sophon::sim {

class CpuPool {
 public:
  /// A pool with `cores` identical cores. `speed_factor` scales job
  /// durations (>1 = faster CPU), supporting the heterogeneous-CPU
  /// extension of the paper's §6. Zero cores is allowed — such a pool can
  /// never schedule work (callers must check can_schedule()).
  explicit CpuPool(int cores, double speed_factor = 1.0);

  [[nodiscard]] int cores() const { return cores_; }
  [[nodiscard]] double speed_factor() const { return speed_factor_; }
  [[nodiscard]] bool can_schedule() const { return cores_ > 0; }

  /// Schedule a single-core job of `duration` that becomes ready at `ready`.
  /// Returns its completion time. Precondition: can_schedule().
  Seconds schedule(Seconds ready, Seconds duration);

  /// Cumulative core-busy seconds (after speed scaling).
  [[nodiscard]] Seconds busy_time() const { return busy_; }

  /// Completion time of the last-finishing core so far.
  [[nodiscard]] Seconds makespan() const;

  void reset();

 private:
  int cores_;
  double speed_factor_;
  // Min-heap of per-core next-free times.
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at_;
  Seconds busy_;
  Seconds last_completion_;
};

/// The GPU as a FIFO batch-service resource.
class GpuResource {
 public:
  GpuResource() = default;

  /// Serve one batch that becomes ready at `ready`; returns completion.
  Seconds schedule(Seconds ready, Seconds batch_time);

  [[nodiscard]] Seconds busy_time() const { return busy_; }
  [[nodiscard]] Seconds free_at() const { return free_at_; }

  void reset();

 private:
  Seconds free_at_;
  Seconds busy_;
};

}  // namespace sophon::sim
