// Cluster configuration: the two-node testbed of the paper's §4 as data.
#pragma once

#include "model/gpu_model.h"
#include "util/units.h"

namespace sophon::net {
class FaultInjector;
}  // namespace sophon::net

namespace sophon::sim {

/// Everything the trainer needs to know about the hardware.
struct ClusterConfig {
  /// Logical cores for preprocessing on the compute node (paper: 48, chosen
  /// so preprocessing is never the local bottleneck).
  int compute_cores = 48;
  /// Cores the storage node can spend on offloaded preprocessing (the Fig 4
  /// sweep variable; 0 disables offloading entirely).
  int storage_cores = 48;
  /// Relative speed of a storage-node core vs. a compute-node core (the §6
  /// heterogeneous-CPU extension; the paper assumes 1.0).
  double storage_core_speed = 1.0;
  /// Inter-cluster link (paper: capped at 500 Mbps).
  Bandwidth bandwidth = Bandwidth::mbps(500.0);
  Seconds link_latency = Seconds::millis(1.0);
  /// Loader look-ahead, in batches (bounded prefetch buffer).
  std::size_t prefetch_batches = 8;

  std::size_t batch_size = 256;

  /// Optional link degradation (latency spikes, bandwidth dips): borrowed,
  /// consulted per transfer by the simulated link. nullptr = healthy link.
  /// RPC-level faults (failures/retries) are modeled separately via
  /// sim::faulty_flow.
  const net::FaultInjector* link_faults = nullptr;
};

}  // namespace sophon::sim
