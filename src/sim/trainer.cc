#include "sim/trainer.h"

#include <algorithm>
#include <utility>

#include "net/fault.h"
#include "net/link.h"
#include "net/resilience.h"
#include "net/wire.h"
#include "sim/resources.h"
#include "util/check.h"

namespace sophon::sim {

EpochStats simulate_epoch_flows(std::size_t num_samples,
                                const std::function<SampleFlow(std::size_t)>& flow,
                                const ClusterConfig& cluster, Seconds gpu_batch_time,
                                std::uint64_t seed, std::size_t epoch_index,
                                const TraceSink& trace) {
  SOPHON_CHECK(num_samples > 0);
  SOPHON_CHECK(cluster.compute_cores > 0);
  SOPHON_CHECK(cluster.batch_size > 0);
  SOPHON_CHECK(cluster.prefetch_batches >= 1);

  const dataset::EpochOrder order(num_samples, seed, epoch_index);
  const auto batches = dataset::make_batches(num_samples, cluster.batch_size);

  CpuPool storage_pool(cluster.storage_cores, cluster.storage_core_speed);
  CpuPool compute_pool(cluster.compute_cores);
  net::SimLink link(cluster.bandwidth, cluster.link_latency);
  link.set_fault_injector(cluster.link_faults);
  GpuResource gpu;

  std::vector<Seconds> batch_gpu_done(batches.size());
  std::size_t offloaded = 0;

  for (std::size_t b = 0; b < batches.size(); ++b) {
    // Bounded prefetch: samples of batch b may only be requested once batch
    // b - prefetch_batches has cleared the GPU (its loader slots freed).
    const Seconds issue = b < cluster.prefetch_batches
                              ? Seconds(0.0)
                              : batch_gpu_done[b - cluster.prefetch_batches];

    Seconds batch_ready(0.0);
    for (std::size_t pos = batches[b].begin; pos < batches[b].end; ++pos) {
      const auto idx = order.at(pos);
      const SampleFlow f = flow(idx);
      SOPHON_CHECK(f.storage_cpu.value() >= 0.0 && f.compute_cpu.value() >= 0.0);
      SOPHON_CHECK(f.wire.count() >= 0);
      SOPHON_CHECK(f.delay.value() >= 0.0);

      Seconds t = issue + f.delay;
      if (f.storage_cpu.value() > 0.0) {
        SOPHON_CHECK_MSG(storage_pool.can_schedule(),
                         "offload assignment requires storage cores");
        ++offloaded;
        t = storage_pool.schedule(t, f.storage_cpu);
      }
      const Seconds storage_done = t;
      t = link.schedule(t, f.wire);
      const Seconds link_done = t;
      if (f.compute_cpu.value() > 0.0) {
        t = compute_pool.schedule(t, f.compute_cpu);
      }
      if (trace) {
        trace(SampleTimeline{idx, pos, issue, storage_done, link_done, t, f.wire});
      }
      batch_ready = std::max(batch_ready, t);
    }
    batch_gpu_done[b] = gpu.schedule(batch_ready, gpu_batch_time);
  }

  EpochStats stats;
  stats.epoch_time = batch_gpu_done.back();
  stats.traffic = link.traffic();
  stats.gpu_busy = gpu.busy_time();
  stats.gpu_utilization =
      stats.epoch_time.value() > 0.0 ? stats.gpu_busy.value() / stats.epoch_time.value() : 0.0;
  stats.storage_cpu_busy = storage_pool.busy_time();
  stats.compute_cpu_busy = compute_pool.busy_time();
  stats.samples = num_samples;
  stats.batches = batches.size();
  stats.offloaded_samples = offloaded;
  return stats;
}

ShardedEpochStats simulate_epoch_sharded(std::size_t num_samples,
                                         const std::function<SampleFlow(std::size_t)>& flow,
                                         const storage::ShardMap& shards,
                                         const ClusterConfig& cluster, Seconds gpu_batch_time,
                                         std::uint64_t seed, std::size_t epoch_index) {
  SOPHON_CHECK(num_samples > 0);
  SOPHON_CHECK(shards.size() == num_samples);
  SOPHON_CHECK(cluster.compute_cores > 0);
  SOPHON_CHECK(cluster.batch_size > 0);
  SOPHON_CHECK(cluster.prefetch_batches >= 1);

  const dataset::EpochOrder order(num_samples, seed, epoch_index);
  const auto batches = dataset::make_batches(num_samples, cluster.batch_size);

  std::vector<CpuPool> node_pools;
  node_pools.reserve(static_cast<std::size_t>(shards.num_nodes()));
  for (int n = 0; n < shards.num_nodes(); ++n) {
    node_pools.emplace_back(cluster.storage_cores, cluster.storage_core_speed);
  }
  CpuPool compute_pool(cluster.compute_cores);
  net::SimLink link(cluster.bandwidth, cluster.link_latency);
  link.set_fault_injector(cluster.link_faults);
  GpuResource gpu;

  std::vector<Seconds> batch_gpu_done(batches.size());
  std::size_t offloaded = 0;

  for (std::size_t b = 0; b < batches.size(); ++b) {
    const Seconds issue = b < cluster.prefetch_batches
                              ? Seconds(0.0)
                              : batch_gpu_done[b - cluster.prefetch_batches];
    Seconds batch_ready(0.0);
    for (std::size_t pos = batches[b].begin; pos < batches[b].end; ++pos) {
      const auto idx = order.at(pos);
      const SampleFlow f = flow(idx);
      Seconds t = issue + f.delay;
      if (f.storage_cpu.value() > 0.0) {
        auto& pool = node_pools[static_cast<std::size_t>(shards.node_of(idx))];
        SOPHON_CHECK_MSG(pool.can_schedule(), "offload assignment requires storage cores");
        ++offloaded;
        t = pool.schedule(t, f.storage_cpu);
      }
      t = link.schedule(t, f.wire);
      if (f.compute_cpu.value() > 0.0) t = compute_pool.schedule(t, f.compute_cpu);
      batch_ready = std::max(batch_ready, t);
    }
    batch_gpu_done[b] = gpu.schedule(batch_ready, gpu_batch_time);
  }

  ShardedEpochStats stats;
  stats.totals.epoch_time = batch_gpu_done.back();
  stats.totals.traffic = link.traffic();
  stats.totals.gpu_busy = gpu.busy_time();
  stats.totals.gpu_utilization = stats.totals.epoch_time.value() > 0.0
                                     ? stats.totals.gpu_busy.value() /
                                           stats.totals.epoch_time.value()
                                     : 0.0;
  stats.totals.compute_cpu_busy = compute_pool.busy_time();
  stats.totals.samples = num_samples;
  stats.totals.batches = batches.size();
  stats.totals.offloaded_samples = offloaded;
  stats.node_cpu_busy.reserve(node_pools.size());
  for (const auto& pool : node_pools) {
    stats.totals.storage_cpu_busy += pool.busy_time();
    stats.node_cpu_busy.push_back(pool.busy_time());
  }
  return stats;
}

std::function<SampleFlow(std::size_t)> faulty_flow(std::function<SampleFlow(std::size_t)> flow,
                                                   std::function<SampleFlow(std::size_t)> raw_flow,
                                                   const net::FaultInjector& faults,
                                                   const net::RetryPolicy& retry,
                                                   std::size_t epoch_index,
                                                   FaultReplayStats* stats,
                                                   obs::TrafficLedger* ledger) {
  SOPHON_CHECK(retry.max_attempts >= 1);
  // `faults` is borrowed: the caller keeps it alive while the flow is used.
  return [flow = std::move(flow), raw_flow = std::move(raw_flow), &faults, retry, epoch_index,
          stats, ledger](std::size_t idx) -> SampleFlow {
    SampleFlow f = flow(idx);
    const Bytes clean_wire = f.wire;  // before retry waste is folded in
    const bool offloaded = f.storage_cpu.value() > 0.0;
    Seconds backoff_delay;
    Bytes wasted_wire;
    Seconds wasted_cpu;
    std::uint64_t retries = 0;
    bool exhausted = true;
    bool permanent = false;
    for (std::uint32_t attempt = 0; attempt < retry.max_attempts; ++attempt) {
      const auto kind = faults.fetch_fault(idx, epoch_index, attempt, offloaded);
      if (kind == net::FaultKind::kNone) {
        exhausted = false;
        break;
      }
      if (kind == net::FaultKind::kPermanent) {
        permanent = true;
        break;
      }
      if (kind == net::FaultKind::kCorrupt) {
        // The corrupt attempt shipped a full payload (and redid the prefix)
        // before validation rejected it.
        wasted_wire += f.wire;
        wasted_cpu += f.storage_cpu;
      }
      if (attempt + 1 == retry.max_attempts) break;  // budget spent
      backoff_delay += net::backoff_for(retry, idx, epoch_index, attempt + 1);
      ++retries;
    }
    if (stats != nullptr) {
      stats->retries += retries;
      stats->backoff += backoff_delay;
      stats->wasted_traffic += wasted_wire;
    }
    if (!exhausted && !permanent) {
      f.delay += backoff_delay;
      f.wire += wasted_wire;
      f.storage_cpu += wasted_cpu;
      if (ledger != nullptr) {
        // Cause decomposition of the fattened wire total: the successful
        // attempt's payload is demand, the corrupt attempts' replays are
        // retry. Sums to f.wire exactly.
        ledger->record(idx, f.stage, obs::TrafficCause::kDemand, clean_wire);
        ledger->record(idx, f.stage, obs::TrafficCause::kRetry, wasted_wire);
      }
      return f;
    }
    // The offloaded fetch is beyond saving: replay the loader's graceful
    // degradation — demote to the raw flow, keeping the penalties already
    // paid. A non-offloaded sample has nothing to demote to; count it
    // failed but keep the epoch moving (the sim has no error channel).
    SampleFlow demoted = offloaded ? raw_flow(idx) : f;
    if (ledger != nullptr) {
      // A demoted offloaded sample ships the raw payload (the degradation
      // ladder's cost); a non-offloaded sample that failed outright still
      // shipped its demand payload in the DES (no error channel).
      ledger->record(idx, demoted.stage,
                     offloaded ? obs::TrafficCause::kRawFallback : obs::TrafficCause::kDemand,
                     demoted.wire);
      ledger->record(idx, f.stage, obs::TrafficCause::kRetry, wasted_wire);
    }
    demoted.delay += backoff_delay;
    demoted.wire += wasted_wire;
    demoted.storage_cpu += wasted_cpu;
    if (stats != nullptr) {
      if (!offloaded ||
          faults.fetch_fault(idx, epoch_index, 0, false) == net::FaultKind::kPermanent) {
        ++stats->failed;  // the raw path is broken too
      } else if (offloaded) {
        ++stats->degraded;
      }
    }
    return demoted;
  };
}

EpochStats simulate_epoch(const dataset::Catalog& catalog, const pipeline::Pipeline& pipeline,
                          const pipeline::CostModel& cost_model, const ClusterConfig& cluster,
                          Seconds gpu_batch_time, std::span<const std::uint8_t> assignment,
                          std::uint64_t seed, std::size_t epoch_index) {
  SOPHON_CHECK(!catalog.empty());
  SOPHON_CHECK(assignment.empty() || assignment.size() == catalog.size());

  const auto flow = [&](std::size_t idx) {
    const auto& meta = catalog.sample(idx);
    const std::size_t prefix = assignment.empty() ? 0 : assignment[idx];
    SOPHON_CHECK(prefix <= pipeline.size());
    SampleFlow f;
    f.storage_cpu =
        prefix > 0 ? pipeline.prefix_cost(meta.raw, prefix, cost_model) : Seconds(0.0);
    f.wire = net::wire_size(pipeline.shape_at(meta.raw, prefix));
    f.compute_cpu = pipeline.suffix_cost(meta.raw, prefix, cost_model);
    f.stage = static_cast<std::uint8_t>(prefix);
    return f;
  };
  return simulate_epoch_flows(catalog.size(), flow, cluster, gpu_batch_time, seed, epoch_index);
}

EpochStats simulate_epochs(const dataset::Catalog& catalog, const pipeline::Pipeline& pipeline,
                           const pipeline::CostModel& cost_model, const ClusterConfig& cluster,
                           Seconds gpu_batch_time, std::span<const std::uint8_t> assignment,
                           std::uint64_t seed, std::size_t num_epochs) {
  SOPHON_CHECK(num_epochs >= 1);
  EpochStats acc;
  for (std::size_t e = 0; e < num_epochs; ++e) {
    const auto s = simulate_epoch(catalog, pipeline, cost_model, cluster, gpu_batch_time,
                                  assignment, seed, e);
    acc.epoch_time += s.epoch_time;
    acc.traffic += s.traffic;
    acc.gpu_busy += s.gpu_busy;
    acc.storage_cpu_busy += s.storage_cpu_busy;
    acc.compute_cpu_busy += s.compute_cpu_busy;
    acc.samples = s.samples;
    acc.batches = s.batches;
    acc.offloaded_samples = s.offloaded_samples;
  }
  const double k = static_cast<double>(num_epochs);
  acc.epoch_time = acc.epoch_time / k;
  acc.traffic = Bytes(static_cast<std::int64_t>(acc.traffic.as_double() / k));
  acc.gpu_busy = acc.gpu_busy / k;
  acc.storage_cpu_busy = acc.storage_cpu_busy / k;
  acc.compute_cpu_busy = acc.compute_cpu_busy / k;
  acc.gpu_utilization =
      acc.epoch_time.value() > 0.0 ? acc.gpu_busy.value() / acc.epoch_time.value() : 0.0;
  return acc;
}

}  // namespace sophon::sim
