#include "sim/multijob.h"

#include <algorithm>

#include "net/link.h"
#include "sim/resources.h"
#include "util/check.h"

namespace sophon::sim {

MultiJobStats simulate_multijob_epoch(const std::vector<JobSpec>& jobs,
                                      const ClusterConfig& shared) {
  SOPHON_CHECK(!jobs.empty());
  for (const auto& job : jobs) {
    SOPHON_CHECK(job.num_samples > 0);
    SOPHON_CHECK(job.batch_size > 0);
    SOPHON_CHECK(job.compute_cores > 0);
    SOPHON_CHECK(job.flow != nullptr);
  }

  // Shared resources.
  CpuPool storage_pool(shared.storage_cores, shared.storage_core_speed);
  net::SimLink link(shared.bandwidth, shared.link_latency);

  // Per-job private state.
  struct JobState {
    dataset::EpochOrder order;
    std::vector<dataset::BatchRange> batches;
    CpuPool compute_pool;
    CpuPool private_storage;
    GpuResource gpu;
    std::vector<Seconds> batch_gpu_done;
    std::size_t next_batch = 0;
    Bytes traffic;
    Seconds storage_busy;
    std::size_t offloaded = 0;
  };
  std::vector<JobState> state;
  state.reserve(jobs.size());
  std::size_t max_batches = 0;
  for (const auto& job : jobs) {
    JobState s{dataset::EpochOrder(job.num_samples, job.seed, 0),
               dataset::make_batches(job.num_samples, job.batch_size),
               CpuPool(job.compute_cores),
               CpuPool(std::max(job.private_storage_cores, 0), shared.storage_core_speed),
               GpuResource{},
               {},
               0,
               Bytes(0),
               Seconds(0.0),
               0};
    s.batch_gpu_done.resize(s.batches.size());
    max_batches = std::max(max_batches, s.batches.size());
    state.push_back(std::move(s));
  }

  // Round-robin by batch index across jobs: shared resources see the jobs'
  // requests interleaved at batch granularity.
  for (std::size_t round = 0; round < max_batches; ++round) {
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      auto& s = state[j];
      if (s.next_batch >= s.batches.size()) continue;
      const auto b = s.next_batch++;
      const Seconds issue = b < shared.prefetch_batches
                                ? Seconds(0.0)
                                : s.batch_gpu_done[b - shared.prefetch_batches];
      Seconds batch_ready(0.0);
      for (std::size_t pos = s.batches[b].begin; pos < s.batches[b].end; ++pos) {
        const auto idx = s.order.at(pos);
        const SampleFlow f = jobs[j].flow(idx);
        Seconds t = issue;
        if (f.storage_cpu.value() > 0.0) {
          auto& pool =
              jobs[j].private_storage_cores >= 0 ? s.private_storage : storage_pool;
          SOPHON_CHECK_MSG(pool.can_schedule(), "offloading requires storage cores");
          ++s.offloaded;
          const Seconds before = pool.busy_time();
          t = pool.schedule(t, f.storage_cpu);
          s.storage_busy += pool.busy_time() - before;
        }
        const Bytes before_traffic = link.traffic();
        t = link.schedule(t, f.wire);
        s.traffic += link.traffic() - before_traffic;
        if (f.compute_cpu.value() > 0.0) t = s.compute_pool.schedule(t, f.compute_cpu);
        batch_ready = std::max(batch_ready, t);
      }
      s.batch_gpu_done[b] = s.gpu.schedule(batch_ready, jobs[j].gpu_batch_time);
    }
  }

  MultiJobStats stats;
  stats.per_job.reserve(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto& s = state[j];
    EpochStats e;
    e.epoch_time = s.batch_gpu_done.back();
    e.traffic = s.traffic;
    e.gpu_busy = s.gpu.busy_time();
    e.gpu_utilization =
        e.epoch_time.value() > 0.0 ? e.gpu_busy.value() / e.epoch_time.value() : 0.0;
    e.storage_cpu_busy = s.storage_busy;
    e.compute_cpu_busy = s.compute_pool.busy_time();
    e.samples = jobs[j].num_samples;
    e.batches = s.batches.size();
    e.offloaded_samples = s.offloaded;
    stats.makespan = std::max(stats.makespan, e.epoch_time);
    stats.total_traffic += e.traffic;
    stats.per_job.push_back(e);
  }
  stats.shared_storage_busy = storage_pool.busy_time();
  for (const auto& s : state) stats.shared_storage_busy += s.private_storage.busy_time();
  return stats;
}

}  // namespace sophon::sim
