#include "sim/resources.h"

#include <algorithm>

#include "util/check.h"

namespace sophon::sim {

CpuPool::CpuPool(int cores, double speed_factor) : cores_(cores), speed_factor_(speed_factor) {
  SOPHON_CHECK(cores >= 0);
  SOPHON_CHECK(speed_factor > 0.0);
  for (int i = 0; i < cores; ++i) free_at_.push(0.0);
}

Seconds CpuPool::schedule(Seconds ready, Seconds duration) {
  SOPHON_CHECK_MSG(can_schedule(), "scheduling on a zero-core pool");
  SOPHON_CHECK(duration.value() >= 0.0);
  const double scaled = duration.value() / speed_factor_;
  const double core_free = free_at_.top();
  free_at_.pop();
  const double start = std::max(ready.value(), core_free);
  const double done = start + scaled;
  free_at_.push(done);
  busy_ += Seconds(scaled);
  last_completion_ = std::max(last_completion_, Seconds(done));
  return Seconds(done);
}

Seconds CpuPool::makespan() const {
  return last_completion_;
}

void CpuPool::reset() {
  while (!free_at_.empty()) free_at_.pop();
  for (int i = 0; i < cores_; ++i) free_at_.push(0.0);
  busy_ = Seconds(0.0);
  last_completion_ = Seconds(0.0);
}

Seconds GpuResource::schedule(Seconds ready, Seconds batch_time) {
  SOPHON_CHECK(batch_time.value() >= 0.0);
  const Seconds start = std::max(ready, free_at_);
  free_at_ = start + batch_time;
  busy_ += batch_time;
  return free_at_;
}

void GpuResource::reset() {
  free_at_ = Seconds(0.0);
  busy_ = Seconds(0.0);
}

}  // namespace sophon::sim
