// The discrete-event training-epoch simulator.
//
// Reproduces the paper's measurement harness: one epoch of fully pipelined
// training where every sample flows storage-CPU → link → compute-CPU → GPU,
// under a per-sample offload assignment. Epoch time is the makespan of the
// last batch's GPU step; data traffic is everything the link carried.
//
// Model choices (documented in DESIGN.md):
//   * storage reads are free (dataset cached in storage memory, as in §4),
//   * the link is a single FIFO pipe at the configured bandwidth,
//   * both CPU pools are work-conserving multi-server queues over modeled
//     op costs (every policy sees the same deterministic cost model),
//   * the loader admits new samples with a bounded look-ahead window, like
//     a DataLoader with a fixed prefetch depth.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "dataset/catalog.h"
#include "dataset/sampler.h"
#include "obs/ledger.h"
#include "pipeline/cost_model.h"
#include "pipeline/pipeline.h"
#include "sim/cluster.h"
#include "sim/trace.h"
#include "storage/sharding.h"
#include "util/units.h"

namespace sophon::net {
class FaultInjector;
struct RetryPolicy;
}  // namespace sophon::net

namespace sophon::sim {

/// What one simulated epoch measured.
struct EpochStats {
  Seconds epoch_time;
  Bytes traffic;               // bytes over the inter-cluster link
  Seconds gpu_busy;            // total GPU service time
  double gpu_utilization = 0;  // gpu_busy / epoch_time
  Seconds storage_cpu_busy;    // core-seconds of offloaded preprocessing
  Seconds compute_cpu_busy;    // core-seconds of local preprocessing
  std::size_t samples = 0;
  std::size_t batches = 0;
  std::size_t offloaded_samples = 0;
};

/// Per-sample resource demands, the generic currency of the simulator: what
/// the storage node computes, what crosses the link, what the compute node
/// finishes. Extensions (e.g. selective payload compression, fault replay)
/// express themselves as different flows for the same sample.
struct SampleFlow {
  Seconds storage_cpu;  // zero means "not offloaded"
  Bytes wire;
  Seconds compute_cpu;
  /// Idle stall charged before the sample enters the pipeline (e.g. retry
  /// backoff replayed from a fault trace). Occupies no resource.
  Seconds delay;
  /// Pipeline stage of the payload on the wire (the offload prefix; 0 =
  /// raw). Pure annotation — the DES ignores it; the traffic ledger uses it
  /// to attribute wire bytes per stage.
  std::uint8_t stage = 0;
};

/// Generic epoch simulation over arbitrary per-sample flows. `flow(i)` must
/// be a pure function of the catalog index `i`. An optional trace sink
/// receives every sample's timeline (see sim/trace.h).
[[nodiscard]] EpochStats simulate_epoch_flows(
    std::size_t num_samples, const std::function<SampleFlow(std::size_t)>& flow,
    const ClusterConfig& cluster, Seconds gpu_batch_time, std::uint64_t seed,
    std::size_t epoch_index = 0, const TraceSink& trace = {});

/// Simulate one training epoch.
///
/// `assignment[i]` is the pipeline prefix length offloaded for catalog
/// sample `i` (0 = fetch raw). An empty span means "no offloading at all".
/// Preconditions: assignment is empty or one entry per catalog sample; any
/// nonzero prefix requires storage_cores > 0.
[[nodiscard]] EpochStats simulate_epoch(const dataset::Catalog& catalog,
                                        const pipeline::Pipeline& pipeline,
                                        const pipeline::CostModel& cost_model,
                                        const ClusterConfig& cluster, Seconds gpu_batch_time,
                                        std::span<const std::uint8_t> assignment,
                                        std::uint64_t seed, std::size_t epoch_index = 0);

/// Epoch stats for a sharded storage cluster: per-node CPU busy time on top
/// of the aggregate measurements.
struct ShardedEpochStats {
  EpochStats totals;
  std::vector<Seconds> node_cpu_busy;  // one entry per storage node
};

/// Simulate one epoch against a multi-node storage cluster: each sample's
/// offloaded prefix runs on the CPU pool of the node that owns its shard
/// (`cluster.storage_cores` is the per-node budget); all nodes share one
/// egress link to the compute cluster.
[[nodiscard]] ShardedEpochStats simulate_epoch_sharded(
    std::size_t num_samples, const std::function<SampleFlow(std::size_t)>& flow,
    const storage::ShardMap& shards, const ClusterConfig& cluster, Seconds gpu_batch_time,
    std::uint64_t seed, std::size_t epoch_index = 0);

/// What replaying a fault trace over one epoch's flows amounted to.
/// Filled by the flow wrapper as the simulator pulls samples.
struct FaultReplayStats {
  std::uint64_t retries = 0;        // failed attempts that were retried
  std::size_t degraded = 0;         // samples demoted to the raw flow
  std::size_t failed = 0;           // samples whose raw fallback also failed
  Seconds backoff;                  // total retry backoff charged as delay
  Bytes wasted_traffic;             // bytes shipped by corrupt attempts
};

/// Wrap a per-sample flow with the same fault semantics the real fetch path
/// has: for each sample, replay the injector's per-attempt draws under the
/// given retry policy. Transient failures charge jittered backoff as delay;
/// corrupt attempts additionally waste a full payload's wire bytes and
/// storage CPU; a permanent fault (retry budget useless) demotes the sample
/// to `raw_flow` — the loader's graceful degradation. `stats` (optional)
/// accumulates the impact; reset it between epochs. The returned flow is a
/// pure function of the index for its *return value*, so it composes with
/// any simulate_epoch_* entry point; `ledger` (optional) is a side channel
/// that attributes the sample's wire bytes per cause (corrupt-attempt bytes
/// as retry, demoted samples as raw-fallback, the rest as demand) — wire a
/// ledger only into entry points that call the flow exactly once per sample
/// (simulate_epoch_flows does; prefetch::replay_epoch calls it twice).
[[nodiscard]] std::function<SampleFlow(std::size_t)> faulty_flow(
    std::function<SampleFlow(std::size_t)> flow, std::function<SampleFlow(std::size_t)> raw_flow,
    const net::FaultInjector& faults, const net::RetryPolicy& retry, std::size_t epoch_index,
    FaultReplayStats* stats = nullptr, obs::TrafficLedger* ledger = nullptr);

/// Average several consecutive epochs (fresh shuffles, same assignment).
[[nodiscard]] EpochStats simulate_epochs(const dataset::Catalog& catalog,
                                         const pipeline::Pipeline& pipeline,
                                         const pipeline::CostModel& cost_model,
                                         const ClusterConfig& cluster, Seconds gpu_batch_time,
                                         std::span<const std::uint8_t> assignment,
                                         std::uint64_t seed, std::size_t num_epochs);

}  // namespace sophon::sim
