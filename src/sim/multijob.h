// Multi-job cluster simulation: several training jobs share the storage
// cluster's preprocessing CPUs and the inter-cluster egress link, while each
// job brings its own compute node and GPU (the typical GPU-cluster layout
// the paper's §5 describes, with hundreds of jobs behind one egress pipe).
//
// Scheduling model: jobs issue work batch-by-batch in round-robin order, so
// contention on the shared resources interleaves at batch granularity —
// a faithful approximation of time-ordered arrivals when jobs progress at
// comparable rates (documented limitation: a job stalled far behind the
// others can be served slightly out of true time order).
#pragma once

#include <functional>
#include <vector>

#include "sim/cluster.h"
#include "sim/trainer.h"

namespace sophon::sim {

/// One tenant job's inputs to the shared simulation.
struct JobSpec {
  std::size_t num_samples = 0;
  std::function<SampleFlow(std::size_t)> flow;  // per-sample demands
  Seconds gpu_batch_time;
  std::size_t batch_size = 256;
  int compute_cores = 48;  // this job's own compute node
  /// -1: contend on the shared storage pool. >= 0: this job owns a private
  /// partition of that many storage cores (the multi-tenant scheduler's
  /// allocation made physical).
  int private_storage_cores = -1;
  std::uint64_t seed = 42;
};

struct MultiJobStats {
  std::vector<EpochStats> per_job;  // epoch stats for each job
  Seconds makespan;                 // last job's finish
  Bytes total_traffic;
  Seconds shared_storage_busy;      // core-seconds on the shared pool
};

/// Simulate one epoch of every job sharing `storage_cores` preprocessing
/// cores and one `bandwidth` link. Per-job compute nodes and GPUs are
/// private. `cluster.compute_cores` is ignored (taken from each JobSpec).
[[nodiscard]] MultiJobStats simulate_multijob_epoch(const std::vector<JobSpec>& jobs,
                                                    const ClusterConfig& shared);

}  // namespace sophon::sim
