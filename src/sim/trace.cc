#include "sim/trace.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace sophon::sim {

TraceSink TraceRecorder::sink() {
  return [this](const SampleTimeline& row) { rows_.push_back(row); };
}

std::vector<double> TraceRecorder::link_utilization(Seconds bucket, Bandwidth bandwidth) const {
  SOPHON_CHECK(bucket.value() > 0.0);
  SOPHON_CHECK(bandwidth.bps() > 0.0);
  if (rows_.empty()) return {};
  double horizon = 0.0;
  for (const auto& row : rows_) horizon = std::max(horizon, row.link_done.value());
  const auto buckets = static_cast<std::size_t>(std::ceil(horizon / bucket.value()));
  std::vector<double> busy(std::max<std::size_t>(buckets, 1), 0.0);
  for (const auto& row : rows_) {
    const double duration = bandwidth.transfer_time(row.wire).value();
    // Attribute the transmission interval [link_done - duration, link_done)
    // across the buckets it spans.
    double start = std::max(0.0, row.link_done.value() - duration);
    const double end = row.link_done.value();
    while (start < end) {
      const auto b = std::min(static_cast<std::size_t>(start / bucket.value()), busy.size() - 1);
      const double bucket_end = (static_cast<double>(b) + 1.0) * bucket.value();
      const double span = std::min(end, bucket_end) - start;
      busy[b] += span;
      start += span;
      if (span <= 0.0) break;  // numerical guard
    }
  }
  for (auto& fraction : busy) fraction = std::min(fraction / bucket.value(), 1.0);
  return busy;
}

Seconds TraceRecorder::mean_latency() const {
  SOPHON_CHECK(!rows_.empty());
  double sum = 0.0;
  for (const auto& row : rows_) sum += row.ready.value() - row.issued.value();
  return Seconds(sum / static_cast<double>(rows_.size()));
}

Json TraceRecorder::to_json() const {
  Json out = Json::array();
  for (const auto& row : rows_) {
    Json record = Json::object();
    record.set("sample", static_cast<std::int64_t>(row.sample_index));
    record.set("position", static_cast<std::int64_t>(row.position));
    record.set("issued_s", row.issued.value());
    record.set("storage_done_s", row.storage_done.value());
    record.set("link_done_s", row.link_done.value());
    record.set("ready_s", row.ready.value());
    record.set("wire_bytes", static_cast<std::int64_t>(row.wire.count()));
    record.set("prefetched", row.prefetched);
    if (row.worker >= 0) {
      record.set("worker", static_cast<std::int64_t>(row.worker));
      record.set("claimed_s", row.claimed.value());
    }
    out.push_back(std::move(record));
  }
  return out;
}

}  // namespace sophon::sim
