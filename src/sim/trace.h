// Per-sample timeline tracing for the discrete-event trainer.
//
// Every simulated sample has four timestamps — issued, storage CPU done,
// last byte off the link, preprocessing finished — and the set of timelines
// is the raw data behind any utilisation or queueing figure. The trainer
// reports them through an optional sink; TraceRecorder collects them and
// derives time-bucketed link utilisation plus JSON export for external
// plotting.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/json.h"
#include "util/units.h"

namespace sophon::sim {

/// One sample's journey through the epoch.
struct SampleTimeline {
  std::uint32_t sample_index = 0;
  std::size_t position = 0;      // index in the epoch's visit order
  Seconds issued;                // admitted by the prefetch window
  Seconds storage_done;          // == issued when nothing was offloaded
  Seconds link_done;             // last byte (plus latency) arrived
  Seconds ready;                 // compute-side preprocessing finished
  Bytes wire;
  /// Issued by the clairvoyant prefetch scheduler rather than on demand
  /// (always false for trainers without a prefetch replay). Appended after
  /// the timestamps so that positional initializers in older call sites
  /// keep meaning the same — as are the lane fields below.
  bool prefetched = false;
  /// Worker lane that consumed the sample (-1 for trainers without worker
  /// lanes) and the time that lane claimed the sample (its previous sample's
  /// ready time). claimed <= issued; issued - claimed is injected delay.
  std::int32_t worker = -1;
  Seconds claimed;
};

using TraceSink = std::function<void(const SampleTimeline&)>;

/// Collects timelines and answers aggregate questions about them.
class TraceRecorder {
 public:
  /// The sink to hand to the trainer. The recorder must outlive the run.
  [[nodiscard]] TraceSink sink();

  [[nodiscard]] const std::vector<SampleTimeline>& rows() const { return rows_; }
  [[nodiscard]] std::size_t size() const { return rows_.size(); }
  void clear() { rows_.clear(); }

  /// Fraction of each `bucket`-long interval the link spent transmitting,
  /// from t=0 to the last arrival. (Transmission time is wire/bandwidth;
  /// it is attributed to the interval ending at link_done, which is exact
  /// for a FIFO link.)
  [[nodiscard]] std::vector<double> link_utilization(Seconds bucket, Bandwidth bandwidth) const;

  /// Mean time from issue to ready — the per-sample pipeline latency.
  [[nodiscard]] Seconds mean_latency() const;

  /// JSON export: an array of per-sample records for external tooling.
  [[nodiscard]] Json to_json() const;

 private:
  std::vector<SampleTimeline> rows_;
};

}  // namespace sophon::sim
