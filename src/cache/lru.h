// Byte-capacity LRU cache of sample blobs (metadata-level).
//
// The caching baselines the paper positions against (Quiver, SiloD, …) keep
// raw samples in compute-node memory/SSD; their benefit is bounded by local
// capacity. This LRU tracks which sample ids are resident and how many
// bytes they occupy — payloads themselves live in the DatasetStore or the
// simulator's accounting, so the same cache drives both the real path and
// the discrete-event path.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "util/units.h"

namespace sophon::cache {

class LruCache {
 public:
  /// A cache holding at most `capacity` bytes. Zero capacity = always miss.
  explicit LruCache(Bytes capacity);

  /// Record an access. On hit the entry is refreshed to MRU and `true` is
  /// returned; on miss the entry is inserted (evicting LRU entries until it
  /// fits) and `false` is returned. Entries larger than the whole capacity
  /// are never admitted.
  bool access(std::uint64_t id, Bytes size);

  /// Query residency without disturbing recency.
  [[nodiscard]] bool contains(std::uint64_t id) const;

  /// Bytes the entry occupies, or zero when absent. Recency-neutral, like
  /// contains() — the prefetch admission policy polls this for upcoming
  /// samples and must not perturb the eviction order while doing so.
  [[nodiscard]] Bytes resident_size(std::uint64_t id) const;

  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] Bytes resident() const { return resident_; }
  [[nodiscard]] std::size_t entries() const { return index_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

  /// Drop everything (counters are kept).
  void clear();

 private:
  struct Entry {
    std::uint64_t id;
    Bytes size;
  };

  void evict_until_fits(Bytes incoming);

  Bytes capacity_;
  Bytes resident_;
  std::list<Entry> lru_;  // front = MRU, back = LRU
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace sophon::cache
