#include "cache/cached_training.h"

#include "dataset/sampler.h"
#include "net/wire.h"
#include "util/check.h"

namespace sophon::cache {

CachedTrainingSession::CachedTrainingSession(const dataset::Catalog& catalog,
                                             const pipeline::Pipeline& pipeline,
                                             const pipeline::CostModel& cost_model,
                                             sim::ClusterConfig cluster, Seconds gpu_batch_time,
                                             core::OffloadPlan plan, Bytes cache_capacity,
                                             std::uint64_t seed)
    : catalog_(catalog),
      pipeline_(pipeline),
      cost_model_(cost_model),
      cluster_(cluster),
      gpu_batch_time_(gpu_batch_time),
      plan_(std::move(plan)),
      cache_(cache_capacity),
      seed_(seed) {
  SOPHON_CHECK(!catalog.empty());
  SOPHON_CHECK(plan_.size() == 0 || plan_.size() == catalog.size());
  if (plan_.size() == 0) plan_ = core::OffloadPlan(catalog.size());
}

CachedEpochResult CachedTrainingSession::run_epoch() {
  // Pre-pass in this epoch's visit order: resolve hits/misses and update
  // the LRU, producing an immutable per-sample serving decision the pure
  // simulator flow can read.
  const dataset::EpochOrder order(catalog_.size(), seed_, epoch_);
  const std::uint64_t hits_before = cache_.hits();
  const std::uint64_t misses_before = cache_.misses();

  std::vector<std::uint8_t> served_from_cache(catalog_.size(), 0);
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const auto idx = order.at(pos);
    if (plan_.prefix(idx) > 0) continue;  // offloaded samples bypass the cache
    const bool hit = cache_.access(idx, catalog_.sample(idx).raw.bytes);
    served_from_cache[idx] = hit ? 1 : 0;
  }

  const auto flow = [this, &served_from_cache](std::size_t idx) {
    const auto& meta = catalog_.sample(idx);
    const std::size_t prefix = plan_.prefix(idx);
    sim::SampleFlow f;
    if (served_from_cache[idx]) {
      // Local raw blob: no storage work, no link transfer, full local
      // preprocessing.
      f.compute_cpu = pipeline_.suffix_cost(meta.raw, 0, cost_model_);
      return f;
    }
    f.storage_cpu =
        prefix > 0 ? pipeline_.prefix_cost(meta.raw, prefix, cost_model_) : Seconds(0.0);
    f.wire = net::wire_size(pipeline_.shape_at(meta.raw, prefix));
    f.compute_cpu = pipeline_.suffix_cost(meta.raw, prefix, cost_model_);
    return f;
  };

  CachedEpochResult result;
  result.stats = sim::simulate_epoch_flows(catalog_.size(), flow, cluster_, gpu_batch_time_,
                                           seed_, epoch_);
  result.hits = cache_.hits() - hits_before;
  result.misses = cache_.misses() - misses_before;
  ++epoch_;
  return result;
}

}  // namespace sophon::cache
