#include "cache/lru.h"

#include "util/check.h"

namespace sophon::cache {

LruCache::LruCache(Bytes capacity) : capacity_(capacity) {
  SOPHON_CHECK(capacity.count() >= 0);
}

bool LruCache::access(std::uint64_t id, Bytes size) {
  SOPHON_CHECK(size.count() > 0);
  if (const auto it = index_.find(id); it != index_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh to MRU
    return true;
  }
  ++misses_;
  if (size > capacity_) return false;  // never admissible
  evict_until_fits(size);
  lru_.push_front({id, size});
  index_.emplace(id, lru_.begin());
  resident_ += size;
  return false;
}

bool LruCache::contains(std::uint64_t id) const {
  return index_.contains(id);
}

Bytes LruCache::resident_size(std::uint64_t id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? Bytes(0) : it->second->size;
}

void LruCache::evict_until_fits(Bytes incoming) {
  while (resident_ + incoming > capacity_ && !lru_.empty()) {
    const auto& victim = lru_.back();
    resident_ -= victim.size;
    index_.erase(victim.id);
    lru_.pop_back();
    ++evictions_;
  }
}

void LruCache::clear() {
  lru_.clear();
  index_.clear();
  resident_ = Bytes(0);
}

}  // namespace sophon::cache
