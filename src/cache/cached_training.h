// Multi-epoch training with a compute-node raw-sample cache.
//
// A cached sample skips the link entirely and preprocesses locally from the
// resident raw blob. Only *raw* samples are cached: caching partially
// preprocessed payloads would freeze the random augmentations (the paper's
// §3.3 objection to preprocess-once reuse), while raw blobs preserve them.
// Samples the offload plan sends through the storage node are therefore
// never inserted — offloading and caching partition the dataset.
//
// The cache evolves across epochs (the session owns it), so epoch 0 is the
// cold pass and later epochs show the steady-state hit rate.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/lru.h"
#include "core/plan.h"
#include "dataset/catalog.h"
#include "pipeline/cost_model.h"
#include "pipeline/pipeline.h"
#include "sim/trainer.h"

namespace sophon::cache {

struct CachedEpochResult {
  sim::EpochStats stats;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  [[nodiscard]] double hit_rate() const {
    const auto total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Drives consecutive simulated epochs over one catalog with a persistent
/// raw-blob LRU on the compute node, combined with an (optional) offload
/// plan. Borrows catalog/pipeline/cost model; keep them alive.
class CachedTrainingSession {
 public:
  CachedTrainingSession(const dataset::Catalog& catalog, const pipeline::Pipeline& pipeline,
                        const pipeline::CostModel& cost_model, sim::ClusterConfig cluster,
                        Seconds gpu_batch_time, core::OffloadPlan plan, Bytes cache_capacity,
                        std::uint64_t seed);

  /// Simulate the next epoch; cache state carries over.
  CachedEpochResult run_epoch();

  [[nodiscard]] const LruCache& cache() const { return cache_; }
  [[nodiscard]] std::size_t epochs_run() const { return epoch_; }

 private:
  const dataset::Catalog& catalog_;
  const pipeline::Pipeline& pipeline_;
  const pipeline::CostModel& cost_model_;
  sim::ClusterConfig cluster_;
  Seconds gpu_batch_time_;
  core::OffloadPlan plan_;
  LruCache cache_;
  std::uint64_t seed_;
  std::size_t epoch_ = 0;
};

}  // namespace sophon::cache
