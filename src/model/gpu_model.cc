#include "model/gpu_model.h"

#include "util/check.h"

namespace sophon::model {

std::string_view net_kind_name(NetKind net) {
  switch (net) {
    case NetKind::kAlexNet:
      return "AlexNet";
    case NetKind::kResNet18:
      return "ResNet18";
    case NetKind::kResNet50:
      return "ResNet50";
  }
  return "Unknown";
}

std::string_view gpu_kind_name(GpuKind gpu) {
  switch (gpu) {
    case GpuKind::kRtx6000:
      return "RTX-6000";
    case GpuKind::kV100:
      return "V100";
  }
  return "Unknown";
}

GpuModel::GpuModel(NetKind net, GpuKind gpu, double images_per_second, Seconds step_overhead)
    : net_(net), gpu_(gpu), images_per_second_(images_per_second), step_overhead_(step_overhead) {
  SOPHON_CHECK(images_per_second > 0.0);
  SOPHON_CHECK(step_overhead.value() >= 0.0);
}

GpuModel GpuModel::lookup(NetKind net, GpuKind gpu) {
  // Sustained fp32 training throughput (images/s), batch ~256.
  double ips = 0.0;
  switch (gpu) {
    case GpuKind::kV100:
      switch (net) {
        case NetKind::kAlexNet:
          ips = 3500.0;
          break;
        case NetKind::kResNet18:
          ips = 1100.0;
          break;
        case NetKind::kResNet50:
          ips = 360.0;
          break;
      }
      break;
    case GpuKind::kRtx6000:
      switch (net) {
        case NetKind::kAlexNet:
          ips = 3100.0;
          break;
        case NetKind::kResNet18:
          ips = 980.0;
          break;
        case NetKind::kResNet50:
          ips = 320.0;
          break;
      }
      break;
  }
  return GpuModel(net, gpu, ips, Seconds::millis(2.0));
}

Seconds GpuModel::batch_time(std::size_t batch_size) const {
  SOPHON_CHECK(batch_size > 0);
  return Seconds(static_cast<double>(batch_size) / images_per_second_) + step_overhead_;
}

}  // namespace sophon::model
