// Analytic GPU step-time models.
//
// The paper uses GPU speed only as a throughput constant: AlexNet is
// "compute-light and thus easily bottlenecked by data fetching", ResNet50 is
// compute-heavy enough to hide a constrained link (Finding #5). We model a
// (network, GPU) pair by its sustained training throughput in images/s plus
// a fixed per-step launch overhead; throughputs are standard published
// fp32 training numbers for the two cards the paper mentions.
#pragma once

#include <string_view>

#include "util/units.h"

namespace sophon::model {

/// The three CNNs the paper trains/profiles.
enum class NetKind { kAlexNet, kResNet18, kResNet50 };

/// The two accelerators the paper's testbeds use.
enum class GpuKind { kRtx6000, kV100 };

[[nodiscard]] std::string_view net_kind_name(NetKind net);
[[nodiscard]] std::string_view gpu_kind_name(GpuKind gpu);

/// Step-time model for one (network, GPU) pair.
class GpuModel {
 public:
  GpuModel(NetKind net, GpuKind gpu, double images_per_second, Seconds step_overhead);

  /// Throughput-equivalent model from the built-in table.
  static GpuModel lookup(NetKind net, GpuKind gpu);

  [[nodiscard]] NetKind net() const { return net_; }
  [[nodiscard]] GpuKind gpu() const { return gpu_; }
  [[nodiscard]] double images_per_second() const { return images_per_second_; }

  /// Time the GPU needs for one training step over `batch_size` samples
  /// (forward + backward + update).
  [[nodiscard]] Seconds batch_time(std::size_t batch_size) const;

 private:
  NetKind net_;
  GpuKind gpu_;
  double images_per_second_;
  Seconds step_overhead_;
};

}  // namespace sophon::model
