// SOPHON's decision metrics.
//
// Stage 1 of the profiler produces a ThroughputProfile (is this workload
// I/O-bound at all?). Stage 2 produces one SampleProfile per sample (where
// is its size minimal, what does reaching that point cost?). The decision
// engine then navigates the four-component EpochCostVector
// (T_G, T_CC, T_CS, T_Net) of §3.2.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/units.h"

namespace sophon::core {

/// Which resource limits the epoch.
enum class Bottleneck { kGpu, kIo, kCpu };

[[nodiscard]] std::string_view bottleneck_name(Bottleneck b);

/// Stage-1 output: sustained throughput of each resource in samples/second,
/// measured over 50 isolated batches each (§3.1).
struct ThroughputProfile {
  double gpu_samples_per_sec = 0.0;
  double io_samples_per_sec = 0.0;
  double cpu_samples_per_sec = 0.0;

  /// The slowest resource is the bottleneck.
  [[nodiscard]] Bottleneck bottleneck() const;

  /// SOPHON only activates offloading for I/O-bound workloads.
  [[nodiscard]] bool io_bound() const { return bottleneck() == Bottleneck::kIo; }
};

/// Stage-2 output for one sample: the sizes and op costs along the pipeline
/// plus the derived offloading quantities of §3.2.
struct SampleProfile {
  std::uint32_t sample_index = 0;
  /// Wire size at each stage (stage 0 = raw), length = #ops + 1.
  std::vector<Bytes> stage_sizes;
  /// Single-core cost of each op, length = #ops.
  std::vector<Seconds> op_costs;
  /// Earliest stage with minimal wire size (0 = never offload).
  std::uint32_t min_stage = 0;
  /// wire(raw) - wire(min_stage); zero when min_stage == 0.
  Bytes reduction;
  /// Cost of ops [0, min_stage) — the storage CPU needed to realise the
  /// reduction.
  Seconds prefix_time;

  /// Offloading efficiency: bytes of traffic saved per second of storage
  /// CPU spent (§3.2). Zero when the sample does not benefit.
  [[nodiscard]] double efficiency() const {
    if (min_stage == 0 || prefix_time.value() <= 0.0) return 0.0;
    return reduction.as_double() / prefix_time.value();
  }

  /// True if offloading this sample reduces traffic at all.
  [[nodiscard]] bool benefits() const { return min_stage > 0 && reduction.count() > 0; }
};

/// The four epoch-level times the decision engine balances (§3.2). All are
/// "if this resource were the only constraint" times for one epoch.
struct EpochCostVector {
  Seconds t_g;    // GPU time
  Seconds t_cc;   // compute-node CPU (total local preprocess / cores)
  Seconds t_cs;   // storage-node CPU (total offloaded preprocess / cores)
  Seconds t_net;  // link time (total traffic / bandwidth)

  /// The largest component — the predicted epoch bottleneck.
  [[nodiscard]] Seconds predominant() const;

  /// Is the network the predominant component? (Strictly greater than every
  /// other component; the paper stops offloading when this ceases to hold.)
  [[nodiscard]] bool net_predominant() const;

  /// The bottleneck as a resource class: kIo when the link dominates, kCpu
  /// when either CPU pool does, kGpu otherwise. Ties resolve GPU > IO > CPU,
  /// mirroring ThroughputProfile::bottleneck().
  [[nodiscard]] Bottleneck bottleneck() const;

  /// A coarse epoch-time prediction: the bottleneck resource's time. Used
  /// by FastFlow-style coarse planning and by the decision engine's
  /// exact-minimiser variant.
  [[nodiscard]] Seconds predicted_epoch_time() const { return predominant(); }
};

}  // namespace sophon::core
