// Extension (paper §6 future work): multi-tenant storage-CPU scheduling.
//
// GPU clusters run many training jobs against one storage cluster; the
// storage node's preprocessing cores are a shared resource. The scheduler
// splits an integer core budget across jobs, using each job's own decision
// engine to predict its epoch time at every candidate allocation, and
// greedily assigns cores where they help the chosen objective most.
#pragma once

#include <string>
#include <vector>

#include "core/decision.h"
#include "core/metrics.h"
#include "sim/cluster.h"

namespace sophon::core {

/// One tenant job, already stage-2 profiled.
struct TenantJob {
  std::string name;
  std::vector<SampleProfile> profiles;
  Seconds gpu_epoch_time;
  sim::ClusterConfig cluster;  // storage_cores is ignored (the scheduler sets it)
};

enum class SchedulerObjective {
  kMinimizeMakespan,  // min of max predicted epoch time across jobs
  kMinimizeTotal,     // min of summed predicted epoch times
};

struct CoreAllocation {
  std::vector<int> cores;                // per job
  std::vector<Seconds> predicted_epoch;  // per job, at the allocated cores
  Seconds max_epoch;
  Seconds total_epoch;
};

/// Predict one job's epoch time when given `storage_cores` cores: runs the
/// job's decision engine under that budget and returns the resulting
/// bottleneck time.
[[nodiscard]] Seconds predict_job_epoch(const TenantJob& job, int storage_cores,
                                        const DecisionOptions& options = {});

/// Split `total_cores` across `jobs` greedily by marginal objective gain.
/// Jobs that cannot benefit from more cores stop receiving them.
[[nodiscard]] CoreAllocation allocate_storage_cores(const std::vector<TenantJob>& jobs,
                                                    int total_cores,
                                                    SchedulerObjective objective,
                                                    const DecisionOptions& options = {});

/// The naive baseline: equal split (remainder to the first jobs).
[[nodiscard]] CoreAllocation equal_split(const std::vector<TenantJob>& jobs, int total_cores,
                                         const DecisionOptions& options = {});

}  // namespace sophon::core
