#include "core/serialize.h"

#include <fstream>
#include <sstream>

namespace sophon::core {

namespace {
constexpr int kProfilesVersion = 1;
constexpr int kPlanVersion = 1;
}  // namespace

Json profiles_to_json(const std::vector<SampleProfile>& profiles) {
  Json root = Json::object();
  root.set("kind", "sophon.stage2_profiles");
  root.set("version", kProfilesVersion);
  Json rows = Json::array();
  for (const auto& p : profiles) {
    Json row = Json::object();
    row.set("index", static_cast<std::int64_t>(p.sample_index));
    Json sizes = Json::array();
    for (const auto s : p.stage_sizes) sizes.push_back(static_cast<std::int64_t>(s.count()));
    row.set("stage_sizes", std::move(sizes));
    Json costs = Json::array();
    for (const auto c : p.op_costs) costs.push_back(c.value());
    row.set("op_costs_s", std::move(costs));
    row.set("min_stage", static_cast<std::int64_t>(p.min_stage));
    rows.push_back(std::move(row));
  }
  root.set("samples", std::move(rows));
  return root;
}

std::optional<std::vector<SampleProfile>> profiles_from_json(const Json& json) {
  if (!json.is_object() || !json.has("kind") || !json.has("version")) return std::nullopt;
  if (json.at("kind").as_string() != "sophon.stage2_profiles") return std::nullopt;
  if (json.at("version").as_int() != kProfilesVersion) return std::nullopt;
  if (!json.has("samples") || !json.at("samples").is_array()) return std::nullopt;

  std::vector<SampleProfile> profiles;
  const auto& rows = json.at("samples");
  profiles.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows.at(i);
    if (!row.is_object() || !row.has("stage_sizes") || !row.has("op_costs_s") ||
        !row.has("min_stage") || !row.has("index")) {
      return std::nullopt;
    }
    SampleProfile p;
    p.sample_index = static_cast<std::uint32_t>(row.at("index").as_int());
    const auto& sizes = row.at("stage_sizes");
    const auto& costs = row.at("op_costs_s");
    if (!sizes.is_array() || !costs.is_array() || sizes.size() != costs.size() + 1) {
      return std::nullopt;
    }
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      p.stage_sizes.push_back(Bytes(sizes.at(s).as_int()));
    }
    for (std::size_t c = 0; c < costs.size(); ++c) {
      p.op_costs.push_back(Seconds(costs.at(c).as_number()));
    }
    const auto min_stage = row.at("min_stage").as_int();
    if (min_stage < 0 || static_cast<std::size_t>(min_stage) >= p.stage_sizes.size()) {
      return std::nullopt;
    }
    p.min_stage = static_cast<std::uint32_t>(min_stage);
    p.reduction = p.stage_sizes[0] - p.stage_sizes[p.min_stage];
    Seconds prefix;
    for (std::uint32_t s = 0; s < p.min_stage; ++s) prefix += p.op_costs[s];
    p.prefix_time = prefix;
    profiles.push_back(std::move(p));
  }
  return profiles;
}

Json plan_to_json(const OffloadPlan& plan) {
  Json root = Json::object();
  root.set("kind", "sophon.offload_plan");
  root.set("version", kPlanVersion);
  root.set("num_samples", static_cast<std::int64_t>(plan.size()));
  // Run-length encode [prefix, count] pairs over sample-id order.
  Json runs = Json::array();
  std::size_t i = 0;
  while (i < plan.size()) {
    const auto prefix = plan.prefix(i);
    std::size_t run = 1;
    while (i + run < plan.size() && plan.prefix(i + run) == prefix) ++run;
    Json pair = Json::array();
    pair.push_back(static_cast<std::int64_t>(prefix));
    pair.push_back(static_cast<std::int64_t>(run));
    runs.push_back(std::move(pair));
    i += run;
  }
  root.set("runs", std::move(runs));
  return root;
}

std::optional<OffloadPlan> plan_from_json(const Json& json) {
  if (!json.is_object() || !json.has("kind") || !json.has("version")) return std::nullopt;
  if (json.at("kind").as_string() != "sophon.offload_plan") return std::nullopt;
  if (json.at("version").as_int() != kPlanVersion) return std::nullopt;
  if (!json.has("num_samples") || !json.has("runs") || !json.at("runs").is_array()) {
    return std::nullopt;
  }
  const auto n = json.at("num_samples").as_int();
  if (n < 0) return std::nullopt;
  OffloadPlan plan(static_cast<std::size_t>(n));
  std::size_t i = 0;
  const auto& runs = json.at("runs");
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const auto& pair = runs.at(r);
    if (!pair.is_array() || pair.size() != 2) return std::nullopt;
    const auto prefix = pair.at(static_cast<std::size_t>(0)).as_int();
    const auto count = pair.at(1).as_int();
    if (prefix < 0 || prefix > 255 || count <= 0) return std::nullopt;
    if (i + static_cast<std::size_t>(count) > plan.size()) return std::nullopt;
    for (std::int64_t k = 0; k < count; ++k) {
      plan.set(i++, static_cast<std::uint8_t>(prefix));
    }
  }
  if (i != plan.size()) return std::nullopt;
  return plan;
}

bool save_json_file(const Json& json, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << json.dump(2) << '\n';
  return static_cast<bool>(out);
}

std::optional<Json> load_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Json::parse(buffer.str());
}

}  // namespace sophon::core
