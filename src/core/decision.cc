#include "core/decision.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/rng.h"

namespace sophon::core {

namespace {

/// The baseline (no offloading) cost vector.
EpochCostVector baseline_cost(const std::vector<SampleProfile>& profiles,
                              const sim::ClusterConfig& cluster, Seconds gpu_epoch_time) {
  EpochCostVector cost;
  cost.t_g = gpu_epoch_time;
  Seconds local_cpu;
  double traffic = 0.0;
  for (const auto& p : profiles) {
    local_cpu += std::accumulate(p.op_costs.begin(), p.op_costs.end(), Seconds(0.0));
    traffic += p.stage_sizes.front().as_double();
  }
  cost.t_cc = local_cpu / static_cast<double>(cluster.compute_cores);
  cost.t_cs = Seconds(0.0);
  cost.t_net = Seconds(traffic / cluster.bandwidth.bytes_per_sec());
  return cost;
}

/// Effective storage-core capacity (cores x speed factor).
double storage_capacity(const sim::ClusterConfig& cluster) {
  return static_cast<double>(cluster.storage_cores) * cluster.storage_core_speed;
}

}  // namespace

EpochCostVector evaluate_plan(const std::vector<SampleProfile>& profiles, const OffloadPlan& plan,
                              const sim::ClusterConfig& cluster, Seconds gpu_epoch_time) {
  SOPHON_CHECK(plan.size() == profiles.size());
  EpochCostVector cost;
  cost.t_g = gpu_epoch_time;
  Seconds local_cpu;
  Seconds storage_cpu;
  double traffic = 0.0;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto& p = profiles[i];
    const std::size_t prefix = plan.prefix(i);
    SOPHON_CHECK(prefix < p.stage_sizes.size());
    traffic += p.stage_sizes[prefix].as_double();
    for (std::size_t op = 0; op < p.op_costs.size(); ++op) {
      if (op < prefix) {
        storage_cpu += p.op_costs[op];
      } else {
        local_cpu += p.op_costs[op];
      }
    }
  }
  cost.t_cc = local_cpu / static_cast<double>(cluster.compute_cores);
  const double capacity = storage_capacity(cluster);
  if (storage_cpu.value() > 0.0) {
    SOPHON_CHECK_MSG(capacity > 0.0, "plan offloads but cluster has no storage cores");
    cost.t_cs = storage_cpu / capacity;
  }
  cost.t_net = Seconds(traffic / cluster.bandwidth.bytes_per_sec());
  return cost;
}

DecisionResult decide_offloading(const std::vector<SampleProfile>& profiles,
                                 const sim::ClusterConfig& cluster, Seconds gpu_epoch_time,
                                 const DecisionOptions& options) {
  SOPHON_CHECK(!profiles.empty());
  DecisionResult result;
  result.plan = OffloadPlan(profiles.size());
  result.baseline = baseline_cost(profiles, cluster, gpu_epoch_time);
  result.final_cost = result.baseline;

  // Candidates: samples whose size shrinks at some intermediate stage.
  std::vector<std::uint32_t> candidates;
  for (const auto& p : profiles) {
    if (p.benefits() && p.efficiency() > 0.0) candidates.push_back(p.sample_index);
  }
  result.beneficial_candidates = candidates.size();

  const double capacity = storage_capacity(cluster);
  if (capacity <= 0.0 || candidates.empty()) return result;

  switch (options.order) {
    case CandidateOrder::kByEfficiency:
      std::sort(candidates.begin(), candidates.end(), [&](std::uint32_t a, std::uint32_t b) {
        const double ea = profiles[a].efficiency();
        const double eb = profiles[b].efficiency();
        if (ea != eb) return ea > eb;
        return a < b;
      });
      break;
    case CandidateOrder::kByReduction:
      std::sort(candidates.begin(), candidates.end(), [&](std::uint32_t a, std::uint32_t b) {
        if (profiles[a].reduction != profiles[b].reduction)
          return profiles[a].reduction > profiles[b].reduction;
        return a < b;
      });
      break;
    case CandidateOrder::kRandom: {
      Rng rng(derive_seed(options.random_seed, "decision-shuffle"));
      for (std::size_t i = candidates.size(); i > 1; --i) {
        const auto j =
            static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
        std::swap(candidates[i - 1], candidates[j]);
      }
      break;
    }
  }

  EpochCostVector cost = result.baseline;
  const double bytes_per_sec = cluster.bandwidth.bytes_per_sec();
  for (const auto idx : candidates) {
    const auto& p = profiles[idx];

    // Stop condition (1): T_Net is no longer the predominant metric.
    if (options.stop_rule != StopRule::kExhaustBenefits && !cost.net_predominant()) break;

    EpochCostVector next = cost;
    next.t_net -= Seconds(p.reduction.as_double() / bytes_per_sec);
    next.t_cc -= p.prefix_time / static_cast<double>(cluster.compute_cores);
    next.t_cs += p.prefix_time / capacity;

    if (options.stop_rule == StopRule::kExactMinimize &&
        next.predicted_epoch_time() >= cost.predicted_epoch_time()) {
      break;
    }

    cost = next;
    result.plan.set(idx, static_cast<std::uint8_t>(p.min_stage));
    ++result.offloaded;
  }
  result.plan.set_traffic_forecast(forecast_plan_traffic(profiles, result.plan));
  result.final_cost = cost;
  return result;
}

ShardedDecisionResult decide_offloading_sharded(const std::vector<SampleProfile>& profiles,
                                                const storage::ShardMap& shards,
                                                const sim::ClusterConfig& cluster,
                                                Seconds gpu_epoch_time) {
  SOPHON_CHECK(!profiles.empty());
  SOPHON_CHECK(shards.size() == profiles.size());

  ShardedDecisionResult result;
  result.plan = OffloadPlan(profiles.size());
  result.baseline = baseline_cost(profiles, cluster, gpu_epoch_time);
  result.final_cost = result.baseline;
  result.node_cpu.assign(static_cast<std::size_t>(shards.num_nodes()), Seconds(0.0));

  std::vector<std::uint32_t> candidates;
  for (const auto& p : profiles) {
    if (p.benefits() && p.efficiency() > 0.0) candidates.push_back(p.sample_index);
  }
  result.beneficial_candidates = candidates.size();

  // Per-node capacity (cores x speed); zero per-node capacity → no offload.
  const double node_capacity =
      static_cast<double>(cluster.storage_cores) * cluster.storage_core_speed;
  if (node_capacity <= 0.0 || candidates.empty()) return result;

  std::sort(candidates.begin(), candidates.end(), [&](std::uint32_t a, std::uint32_t b) {
    const double ea = profiles[a].efficiency();
    const double eb = profiles[b].efficiency();
    if (ea != eb) return ea > eb;
    return a < b;
  });

  EpochCostVector cost = result.baseline;
  const double bytes_per_sec = cluster.bandwidth.bytes_per_sec();
  auto max_node_tcs = [&]() {
    Seconds worst(0.0);
    for (const auto busy : result.node_cpu) {
      worst = std::max(worst, busy / node_capacity);
    }
    return worst;
  };

  for (const auto idx : candidates) {
    if (!cost.net_predominant()) break;
    const auto& p = profiles[idx];
    const auto node = static_cast<std::size_t>(shards.node_of(idx));

    EpochCostVector next = cost;
    next.t_net -= Seconds(p.reduction.as_double() / bytes_per_sec);
    next.t_cc -= p.prefix_time / static_cast<double>(cluster.compute_cores);
    const Seconds node_after = (result.node_cpu[node] + p.prefix_time) / node_capacity;
    next.t_cs = std::max(max_node_tcs(), node_after);

    // Node-saturation skip: if routing this sample through its (hot) node
    // would not improve the predicted epoch time, leave it local and keep
    // scanning — samples on colder nodes may still help.
    if (next.predicted_epoch_time() >= cost.predicted_epoch_time()) continue;

    cost = next;
    result.node_cpu[node] += p.prefix_time;
    result.plan.set(idx, static_cast<std::uint8_t>(p.min_stage));
    ++result.offloaded;
  }
  result.plan.set_traffic_forecast(forecast_plan_traffic(profiles, result.plan));
  result.final_cost = cost;
  return result;
}

ReplicatedDecisionResult decide_offloading_replicated(const std::vector<SampleProfile>& profiles,
                                                      const storage::ReplicaMap& replicas,
                                                      const sim::ClusterConfig& cluster,
                                                      Seconds gpu_epoch_time) {
  SOPHON_CHECK(!profiles.empty());
  SOPHON_CHECK(replicas.size() == profiles.size());

  ReplicatedDecisionResult result;
  result.plan = OffloadPlan(profiles.size());
  result.baseline = baseline_cost(profiles, cluster, gpu_epoch_time);
  result.final_cost = result.baseline;
  result.node_cpu.assign(static_cast<std::size_t>(replicas.num_nodes()), Seconds(0.0));

  // Default execution node: the primary replica (only meaningful for
  // offloaded samples, but the map must be total).
  std::vector<std::uint16_t> execution(profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) execution[i] = replicas.replicas_of(i)[0];

  std::vector<std::uint32_t> candidates;
  for (const auto& p : profiles) {
    if (p.benefits() && p.efficiency() > 0.0) candidates.push_back(p.sample_index);
  }
  result.beneficial_candidates = candidates.size();

  const double node_capacity =
      static_cast<double>(cluster.storage_cores) * cluster.storage_core_speed;
  if (node_capacity <= 0.0 || candidates.empty()) {
    result.execution_nodes =
        storage::ShardMap::explicit_map(std::move(execution), replicas.num_nodes());
    return result;
  }

  std::sort(candidates.begin(), candidates.end(), [&](std::uint32_t a, std::uint32_t b) {
    const double ea = profiles[a].efficiency();
    const double eb = profiles[b].efficiency();
    if (ea != eb) return ea > eb;
    return a < b;
  });

  EpochCostVector cost = result.baseline;
  const double bytes_per_sec = cluster.bandwidth.bytes_per_sec();
  auto max_node_tcs = [&]() {
    Seconds worst(0.0);
    for (const auto busy : result.node_cpu) worst = std::max(worst, busy / node_capacity);
    return worst;
  };

  for (const auto idx : candidates) {
    if (!cost.net_predominant()) break;
    const auto& p = profiles[idx];

    // Route to the least-loaded replica holder.
    std::uint16_t best_node = replicas.replicas_of(idx)[0];
    for (const auto node : replicas.replicas_of(idx)) {
      if (result.node_cpu[node] < result.node_cpu[best_node]) best_node = node;
    }

    EpochCostVector next = cost;
    next.t_net -= Seconds(p.reduction.as_double() / bytes_per_sec);
    next.t_cc -= p.prefix_time / static_cast<double>(cluster.compute_cores);
    const Seconds node_after = (result.node_cpu[best_node] + p.prefix_time) / node_capacity;
    next.t_cs = std::max(max_node_tcs(), node_after);
    if (next.predicted_epoch_time() >= cost.predicted_epoch_time()) continue;

    cost = next;
    result.node_cpu[best_node] += p.prefix_time;
    execution[idx] = best_node;
    result.plan.set(idx, static_cast<std::uint8_t>(p.min_stage));
    ++result.offloaded;
  }
  result.plan.set_traffic_forecast(forecast_plan_traffic(profiles, result.plan));
  result.final_cost = cost;
  result.execution_nodes =
      storage::ShardMap::explicit_map(std::move(execution), replicas.num_nodes());
  return result;
}

PlanTrafficForecast forecast_plan_traffic(const std::vector<SampleProfile>& profiles,
                                          const OffloadPlan& plan) {
  PlanTrafficForecast forecast;
  std::size_t stages = 1;
  for (const auto& p : profiles) stages = std::max(stages, p.stage_sizes.size());
  forecast.per_stage.assign(stages, Bytes(0));
  for (const auto& p : profiles) {
    const std::size_t prefix = plan.size() == 0 ? 0 : plan.prefix(p.sample_index);
    SOPHON_CHECK(prefix < p.stage_sizes.size());
    // stage_sizes are exact framed wire sizes (profiler stage 2), so on an
    // epoch with no faults or replans the prediction matches the link's
    // byte counter exactly — the property the ledger's savings table pins.
    forecast.baseline += p.stage_sizes[0];
    forecast.predicted += p.stage_sizes[prefix];
    forecast.per_stage[prefix] += p.stage_sizes[prefix];
  }
  return forecast;
}

}  // namespace sophon::core
