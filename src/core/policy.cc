#include "core/policy.h"

#include "core/profiler.h"
#include "util/check.h"
#include "util/table.h"

namespace sophon::core {

std::string_view policy_kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNoOff:
      return "No-Off";
    case PolicyKind::kAllOff:
      return "All-Off";
    case PolicyKind::kFastFlow:
      return "FastFlow";
    case PolicyKind::kResizeOff:
      return "Resize-Off";
    case PolicyKind::kSophon:
      return "SOPHON";
  }
  return "Unknown";
}

Seconds PlanContext::gpu_epoch_time() const {
  SOPHON_CHECK(catalog != nullptr);
  const auto batches =
      (catalog->size() + cluster.batch_size - 1) / cluster.batch_size;
  return gpu_batch_time * static_cast<double>(batches);
}

namespace {

void check_context(const PlanContext& ctx) {
  SOPHON_CHECK(ctx.catalog != nullptr && !ctx.catalog->empty());
  SOPHON_CHECK(ctx.pipeline != nullptr && ctx.pipeline->size() > 0);
  SOPHON_CHECK(ctx.cost_model != nullptr);
  SOPHON_CHECK(ctx.gpu_batch_time.value() > 0.0);
}

class NoOffPolicy final : public Policy {
 public:
  [[nodiscard]] PolicyKind kind() const override { return PolicyKind::kNoOff; }

  [[nodiscard]] PolicyDecision plan(const PlanContext& ctx) const override {
    check_context(ctx);
    PolicyDecision d;
    d.plan = OffloadPlan(ctx.catalog->size());
    d.offloading_active = false;
    d.rationale = "original training pipeline; all preprocessing on the compute node";
    return d;
  }
};

class AllOffPolicy final : public Policy {
 public:
  [[nodiscard]] PolicyKind kind() const override { return PolicyKind::kAllOff; }

  [[nodiscard]] PolicyDecision plan(const PlanContext& ctx) const override {
    check_context(ctx);
    PolicyDecision d;
    if (ctx.cluster.storage_cores == 0) {
      d.plan = OffloadPlan(ctx.catalog->size());
      d.offloading_active = false;
      d.rationale = "storage node has no preprocessing cores; cannot offload";
      return d;
    }
    d.plan = OffloadPlan::uniform(ctx.catalog->size(),
                                  static_cast<std::uint8_t>(ctx.pipeline->size()));
    d.offloading_active = true;
    d.rationale = "all preprocessing operations of all samples offloaded";
    return d;
  }
};

class ResizeOffPolicy final : public Policy {
 public:
  [[nodiscard]] PolicyKind kind() const override { return PolicyKind::kResizeOff; }

  [[nodiscard]] PolicyDecision plan(const PlanContext& ctx) const override {
    check_context(ctx);
    PolicyDecision d;
    if (ctx.cluster.storage_cores == 0) {
      d.plan = OffloadPlan(ctx.catalog->size());
      d.offloading_active = false;
      d.rationale = "storage node has no preprocessing cores; cannot offload";
      return d;
    }
    // Decode + RandomResizedCrop — the prefix that shrinks large photos.
    d.plan = OffloadPlan::uniform(ctx.catalog->size(), 2);
    d.offloading_active = true;
    d.rationale = "Decode and RandomResizedCrop offloaded for every sample";
    return d;
  }
};

class FastFlowPolicy final : public Policy {
 public:
  [[nodiscard]] PolicyKind kind() const override { return PolicyKind::kFastFlow; }

  [[nodiscard]] PolicyDecision plan(const PlanContext& ctx) const override {
    check_context(ctx);
    PolicyDecision d;
    const std::size_t n = ctx.catalog->size();
    if (ctx.cluster.storage_cores == 0) {
      d.plan = OffloadPlan(n);
      d.offloading_active = false;
      d.rationale = "storage node has no preprocessing cores; cannot offload";
      return d;
    }
    // Coarse profile: compare predicted epoch time with nothing offloaded
    // vs. *everything* offloaded (FastFlow's all-or-nothing granularity).
    const auto profiles = profile_stage2(*ctx.catalog, *ctx.pipeline, *ctx.cost_model);
    const auto none = OffloadPlan(n);
    const auto all = OffloadPlan::uniform(n, static_cast<std::uint8_t>(ctx.pipeline->size()));
    const Seconds t_none =
        evaluate_plan(profiles, none, ctx.cluster, ctx.gpu_epoch_time()).predicted_epoch_time();
    const Seconds t_all =
        evaluate_plan(profiles, all, ctx.cluster, ctx.gpu_epoch_time()).predicted_epoch_time();
    if (t_all < t_none) {
      d.plan = all;
      d.offloading_active = true;
      d.rationale = strf("coarse profile predicts offloading all ops is faster (%.1fs vs %.1fs)",
                         t_all.value(), t_none.value());
    } else {
      d.plan = none;
      d.offloading_active = false;
      d.rationale =
          strf("coarse profile predicts offloading all ops would increase epoch time "
               "(%.1fs vs %.1fs); not offloading",
               t_all.value(), t_none.value());
    }
    return d;
  }
};

class SophonPolicy final : public Policy {
 public:
  explicit SophonPolicy(const DecisionOptions& options) : options_(options) {}

  [[nodiscard]] PolicyKind kind() const override { return PolicyKind::kSophon; }

  [[nodiscard]] PolicyDecision plan(const PlanContext& ctx) const override {
    check_context(ctx);
    PolicyDecision d;
    const std::size_t n = ctx.catalog->size();

    // Stage 1: bottleneck triage. Offloading activates only when I/O-bound.
    Stage1Options s1;
    s1.seed = ctx.seed;
    const auto throughput = profile_stage1(*ctx.catalog, *ctx.pipeline, *ctx.cost_model,
                                           ctx.cluster, ctx.gpu_batch_time, s1);
    if (!throughput.io_bound() || ctx.cluster.storage_cores == 0) {
      d.plan = OffloadPlan(n);
      d.offloading_active = false;
      d.rationale = ctx.cluster.storage_cores == 0
                        ? "workload is I/O-bound but the storage node has no cores; "
                          "falling back to local preprocessing"
                        : strf("stage-1 profile: bottleneck is %s, not I/O; no offloading",
                               std::string(bottleneck_name(throughput.bottleneck())).c_str());
      return d;
    }

    // Stage 2 + decision engine.
    const auto profiles = profile_stage2(*ctx.catalog, *ctx.pipeline, *ctx.cost_model);
    auto result = decide_offloading(profiles, ctx.cluster, ctx.gpu_epoch_time(), options_);
    d.offloading_active = result.offloaded > 0;
    d.rationale = strf(
        "I/O-bound (gpu %.0f, io %.0f, cpu %.0f samples/s); offloaded %zu of %zu beneficial "
        "samples; predicted T_Net %.1fs -> %.1fs, T_CS %.1fs",
        throughput.gpu_samples_per_sec, throughput.io_samples_per_sec,
        throughput.cpu_samples_per_sec, result.offloaded, result.beneficial_candidates,
        result.baseline.t_net.value(), result.final_cost.t_net.value(),
        result.final_cost.t_cs.value());
    d.plan = std::move(result.plan);
    return d;
  }

 private:
  DecisionOptions options_;
};

}  // namespace

std::unique_ptr<Policy> make_policy(PolicyKind kind, const DecisionOptions& sophon_options) {
  switch (kind) {
    case PolicyKind::kNoOff:
      return std::make_unique<NoOffPolicy>();
    case PolicyKind::kAllOff:
      return std::make_unique<AllOffPolicy>();
    case PolicyKind::kFastFlow:
      return std::make_unique<FastFlowPolicy>();
    case PolicyKind::kResizeOff:
      return std::make_unique<ResizeOffPolicy>();
    case PolicyKind::kSophon:
      return std::make_unique<SophonPolicy>(sophon_options);
  }
  SOPHON_CHECK_MSG(false, "unknown policy kind");
  return nullptr;
}

std::vector<std::unique_ptr<Policy>> make_all_policies() {
  std::vector<std::unique_ptr<Policy>> policies;
  policies.push_back(make_policy(PolicyKind::kNoOff));
  policies.push_back(make_policy(PolicyKind::kAllOff));
  policies.push_back(make_policy(PolicyKind::kFastFlow));
  policies.push_back(make_policy(PolicyKind::kResizeOff));
  policies.push_back(make_policy(PolicyKind::kSophon));
  return policies;
}

}  // namespace sophon::core
