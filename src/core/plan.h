// The offload plan: one pipeline-prefix directive per catalog sample — the
// artifact a policy produces and the trainer consumes.
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.h"

namespace sophon::core {

class OffloadPlan {
 public:
  OffloadPlan() = default;

  /// A plan covering `num_samples` samples, all initially not offloaded.
  explicit OffloadPlan(std::size_t num_samples);

  /// A uniform plan: every sample offloads the same prefix.
  static OffloadPlan uniform(std::size_t num_samples, std::uint8_t prefix_len);

  [[nodiscard]] std::size_t size() const { return assignment_.size(); }

  void set(std::size_t sample_index, std::uint8_t prefix_len);
  [[nodiscard]] std::uint8_t prefix(std::size_t sample_index) const;

  /// The raw per-sample directive vector, in catalog order (what
  /// sim::simulate_epoch takes).
  [[nodiscard]] const std::vector<std::uint8_t>& assignment() const { return assignment_; }

  /// Number of samples with a nonzero prefix.
  [[nodiscard]] std::size_t offloaded_count() const;

  /// Fraction of samples offloaded.
  [[nodiscard]] double offloaded_fraction() const;

 private:
  std::vector<std::uint8_t> assignment_;
};

}  // namespace sophon::core
