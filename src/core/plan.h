// The offload plan: one pipeline-prefix directive per catalog sample — the
// artifact a policy produces and the trainer consumes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/units.h"

namespace sophon::core {

/// decide_offloading's traffic receipt for a plan: what one epoch under
/// this plan is predicted to move over the link, against the all-raw
/// baseline. The traffic ledger pairs it with the measured per-epoch link
/// bytes so every replan carries a predicted-vs-actual savings row.
struct PlanTrafficForecast {
  Bytes baseline;    ///< one epoch fetched raw (prefix 0 everywhere)
  Bytes predicted;   ///< one epoch under this plan's prefixes
  /// predicted bytes broken down by the stage shipped (index = prefix).
  std::vector<Bytes> per_stage;

  [[nodiscard]] Bytes predicted_savings() const { return baseline - predicted; }
};

class OffloadPlan {
 public:
  OffloadPlan() = default;

  /// A plan covering `num_samples` samples, all initially not offloaded.
  explicit OffloadPlan(std::size_t num_samples);

  /// A uniform plan: every sample offloads the same prefix.
  static OffloadPlan uniform(std::size_t num_samples, std::uint8_t prefix_len);

  [[nodiscard]] std::size_t size() const { return assignment_.size(); }

  void set(std::size_t sample_index, std::uint8_t prefix_len);
  [[nodiscard]] std::uint8_t prefix(std::size_t sample_index) const;

  /// The raw per-sample directive vector, in catalog order (what
  /// sim::simulate_epoch takes).
  [[nodiscard]] const std::vector<std::uint8_t>& assignment() const { return assignment_; }

  /// Number of samples with a nonzero prefix.
  [[nodiscard]] std::size_t offloaded_count() const;

  /// Fraction of samples offloaded.
  [[nodiscard]] double offloaded_fraction() const;

  /// Attach / read the decision engine's traffic forecast. Optional: plans
  /// built by hand (tests, uniform baselines) carry none.
  void set_traffic_forecast(PlanTrafficForecast forecast);
  [[nodiscard]] const std::optional<PlanTrafficForecast>& traffic_forecast() const {
    return forecast_;
  }

 private:
  std::vector<std::uint8_t> assignment_;
  std::optional<PlanTrafficForecast> forecast_;
};

}  // namespace sophon::core
