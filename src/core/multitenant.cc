#include "core/multitenant.h"

#include <algorithm>

#include "util/check.h"

namespace sophon::core {

Seconds predict_job_epoch(const TenantJob& job, int storage_cores,
                          const DecisionOptions& options) {
  SOPHON_CHECK(storage_cores >= 0);
  auto cluster = job.cluster;
  cluster.storage_cores = storage_cores;
  const auto result = decide_offloading(job.profiles, cluster, job.gpu_epoch_time, options);
  return result.final_cost.predicted_epoch_time();
}

namespace {

CoreAllocation finish_allocation(const std::vector<TenantJob>& jobs, std::vector<int> cores,
                                 const DecisionOptions& options) {
  CoreAllocation alloc;
  alloc.cores = std::move(cores);
  alloc.predicted_epoch.reserve(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const Seconds t = predict_job_epoch(jobs[j], alloc.cores[j], options);
    alloc.predicted_epoch.push_back(t);
    alloc.max_epoch = std::max(alloc.max_epoch, t);
    alloc.total_epoch += t;
  }
  return alloc;
}

}  // namespace

CoreAllocation allocate_storage_cores(const std::vector<TenantJob>& jobs, int total_cores,
                                      SchedulerObjective objective,
                                      const DecisionOptions& options) {
  SOPHON_CHECK(!jobs.empty());
  SOPHON_CHECK(total_cores >= 0);

  std::vector<int> cores(jobs.size(), 0);
  std::vector<Seconds> current(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    current[j] = predict_job_epoch(jobs[j], 0, options);
  }

  for (int budget = 0; budget < total_cores; ++budget) {
    // Give the next core to the job where it helps the objective most.
    std::size_t best_job = jobs.size();
    double best_gain = 0.0;
    Seconds best_new_time;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const Seconds with_one_more = predict_job_epoch(jobs[j], cores[j] + 1, options);
      const double delta = current[j].value() - with_one_more.value();
      if (delta <= 0.0) continue;
      double gain = delta;
      if (objective == SchedulerObjective::kMinimizeMakespan) {
        // Only the slowest job's improvement moves the makespan; weight the
        // gain by how close this job is to being the slowest.
        const Seconds makespan = *std::max_element(current.begin(), current.end());
        gain = current[j] == makespan ? delta : delta * 1e-6;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_job = j;
        best_new_time = with_one_more;
      }
    }
    if (best_job == jobs.size()) break;  // no job benefits from more cores
    ++cores[best_job];
    current[best_job] = best_new_time;
  }
  return finish_allocation(jobs, std::move(cores), options);
}

CoreAllocation equal_split(const std::vector<TenantJob>& jobs, int total_cores,
                           const DecisionOptions& options) {
  SOPHON_CHECK(!jobs.empty());
  std::vector<int> cores(jobs.size(), total_cores / static_cast<int>(jobs.size()));
  for (std::size_t j = 0; j < static_cast<std::size_t>(total_cores) % jobs.size(); ++j) {
    ++cores[j];
  }
  return finish_allocation(jobs, std::move(cores), options);
}

}  // namespace sophon::core
