// SOPHON's two-stage profiler (§3.1).
//
// Stage 1 triages the workload's bottleneck by running 50 batches under
// three isolated settings — GPU with synthetic data, pure remote fetch, and
// pure CPU preprocessing over cached data — and reporting each resource's
// throughput. The cost of this stage is negligible next to a 50-epoch job.
//
// Stage 2 collects per-sample, per-op sizes and times. In the original
// system this rides along with the first training epoch; here it evaluates
// the same quantities through the pipeline's analytic path against the
// catalog (identical numbers, no wall-clock noise).
#pragma once

#include <cstdint>
#include <vector>

#include "core/metrics.h"
#include "dataset/catalog.h"
#include "pipeline/cost_model.h"
#include "pipeline/pipeline.h"
#include "sim/cluster.h"

namespace sophon::core {

struct Stage1Options {
  std::size_t num_batches = 50;
  std::uint64_t seed = 0;
};

/// Run the stage-1 triage. Throughputs are computed over the first
/// `num_batches` batches of a shuffled epoch, matching §3.1:
///  (1) GPU-only:   batches * batch_size / (batches * gpu_batch_time)
///  (2) I/O-only:   bytes of those batches / bandwidth
///  (3) CPU-only:   full local preprocessing of those batches on the
///                  compute node's cores
[[nodiscard]] ThroughputProfile profile_stage1(const dataset::Catalog& catalog,
                                               const pipeline::Pipeline& pipeline,
                                               const pipeline::CostModel& cost_model,
                                               const sim::ClusterConfig& cluster,
                                               Seconds gpu_batch_time,
                                               const Stage1Options& options = {});

/// Run the stage-2 per-sample trace over the whole catalog. Deterministic;
/// one SampleProfile per catalog entry, in catalog order.
[[nodiscard]] std::vector<SampleProfile> profile_stage2(const dataset::Catalog& catalog,
                                                        const pipeline::Pipeline& pipeline,
                                                        const pipeline::CostModel& cost_model);

}  // namespace sophon::core
