#include "core/reuse.h"

#include <set>

#include "net/wire.h"
#include "storage/server.h"
#include "util/check.h"

namespace sophon::core {

namespace {

/// Artifact stage for a sample: §3.3's strategy preprocesses "just once to
/// minimum size", so samples whose minimum is the raw form stay raw (and
/// keep their fresh per-epoch augmentations).
std::size_t artifact_stage(const pipeline::Pipeline& pipeline, const pipeline::SampleShape& raw) {
  return pipeline.min_size_stage(raw);
}

}  // namespace

ReuseEvaluation evaluate_preprocess_once(const dataset::Catalog& catalog,
                                         const pipeline::Pipeline& pipeline,
                                         const pipeline::CostModel& cost_model,
                                         const sim::ClusterConfig& cluster,
                                         Seconds gpu_batch_time, std::size_t epochs,
                                         std::uint64_t seed) {
  SOPHON_CHECK(!catalog.empty());
  SOPHON_CHECK(epochs >= 2);
  SOPHON_CHECK_MSG(cluster.storage_cores > 0,
                   "preprocess-once needs storage CPU for the one-time pass");

  ReuseEvaluation eval;

  // Epoch 0: storage node runs the one-time prefix per sample and ships the
  // artifact (raw never crosses the link; the artifact is produced next to
  // the data).
  const auto first_flow = [&](std::size_t idx) {
    const auto& meta = catalog.sample(idx);
    const auto stage = artifact_stage(pipeline, meta.raw);
    sim::SampleFlow f;
    f.storage_cpu =
        stage > 0 ? pipeline.prefix_cost(meta.raw, stage, cost_model) : Seconds(0.0);
    f.wire = net::wire_size(pipeline.shape_at(meta.raw, stage));
    f.compute_cpu = pipeline.suffix_cost(meta.raw, stage, cost_model);
    return f;
  };
  eval.first_epoch = sim::simulate_epoch_flows(catalog.size(), first_flow, cluster,
                                               gpu_batch_time, seed, 0);

  // Steady state: artifacts are served from storage memory with no CPU.
  const auto steady_flow = [&](std::size_t idx) {
    const auto& meta = catalog.sample(idx);
    const auto stage = artifact_stage(pipeline, meta.raw);
    sim::SampleFlow f;
    f.wire = net::wire_size(pipeline.shape_at(meta.raw, stage));
    f.compute_cpu = pipeline.suffix_cost(meta.raw, stage, cost_model);
    return f;
  };
  eval.steady_epoch = sim::simulate_epoch_flows(catalog.size(), steady_flow, cluster,
                                                gpu_batch_time, seed, 1);

  // Footprint: only preprocessed artifacts add storage (raw is already at
  // rest). Diversity: raw-served samples keep fresh augmentations every
  // epoch; artifact samples are frozen at one variant.
  std::size_t artifact_samples = 0;
  for (const auto& meta : catalog.samples()) {
    const auto stage = artifact_stage(pipeline, meta.raw);
    if (stage == 0) continue;
    ++artifact_samples;
    eval.stored_footprint += pipeline.shape_at(meta.raw, stage).byte_size();
  }
  const auto n = static_cast<double>(catalog.size());
  eval.variants_per_sample =
      (static_cast<double>(catalog.size() - artifact_samples) * static_cast<double>(epochs) +
       static_cast<double>(artifact_samples) * 1.0) /
      n;
  return eval;
}

std::size_t count_distinct_variants(const pipeline::Pipeline& pipeline,
                                    const pipeline::SampleData& raw_sample, std::size_t epochs,
                                    std::uint64_t seed, std::uint64_t sample_id, bool reuse) {
  SOPHON_CHECK(epochs >= 1);
  std::set<std::vector<std::uint8_t>> variants;
  // The artifact, when reusing, is fixed at epoch 0's augmentation streams.
  const auto artifact_seed = storage::augmentation_seed(seed, 0, sample_id);
  pipeline::SampleData artifact = raw_sample;
  std::size_t stage = 0;
  if (reuse) {
    const auto shape = pipeline::shape_of(raw_sample);
    // Decode to discover dims if needed; artifact stage 2 covers both cases.
    (void)shape;
    stage = 2;
    artifact = pipeline.run_seeded(artifact, 0, stage, artifact_seed);
  }
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    const auto stream = storage::augmentation_seed(seed, epoch, sample_id);
    const auto out =
        pipeline.run_seeded(artifact, stage, pipeline.size(), reuse ? artifact_seed : stream);
    variants.insert(net::serialize_sample(out));
  }
  return variants.size();
}

}  // namespace sophon::core
