// Offloading policies: SOPHON plus the paper's four baselines (§4).
//
//   No-Off     — the original training pipeline, nothing offloaded.
//   All-Off    — every op of every sample runs near storage.
//   FastFlow   — coarse offloading framework: treats the preprocessing
//                pipeline as a single unit and all samples alike; offloads
//                everything or nothing based on which its profile predicts
//                to be faster.
//   Resize-Off — offloads Decode + RandomResizedCrop for all samples.
//   SOPHON     — two-stage profiling + per-sample decision engine.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/decision.h"
#include "core/metrics.h"
#include "core/plan.h"
#include "dataset/catalog.h"
#include "pipeline/cost_model.h"
#include "pipeline/pipeline.h"
#include "sim/cluster.h"

namespace sophon::core {

enum class PolicyKind { kNoOff, kAllOff, kFastFlow, kResizeOff, kSophon };

[[nodiscard]] std::string_view policy_kind_name(PolicyKind kind);

/// Everything a policy may consult when planning.
struct PlanContext {
  const dataset::Catalog* catalog = nullptr;
  const pipeline::Pipeline* pipeline = nullptr;
  const pipeline::CostModel* cost_model = nullptr;
  sim::ClusterConfig cluster;
  Seconds gpu_batch_time;
  std::uint64_t seed = 0;

  /// T_G for one epoch under this context.
  [[nodiscard]] Seconds gpu_epoch_time() const;
};

/// A policy's output: the plan plus an explanation of how it was reached.
struct PolicyDecision {
  OffloadPlan plan;
  bool offloading_active = false;
  std::string rationale;
};

class Policy {
 public:
  virtual ~Policy() = default;
  [[nodiscard]] virtual PolicyKind kind() const = 0;
  [[nodiscard]] virtual std::string_view name() const { return policy_kind_name(kind()); }
  [[nodiscard]] virtual PolicyDecision plan(const PlanContext& context) const = 0;
};

/// Construct a policy. `sophon_options` only affects kSophon (the ablation
/// benches pass non-default orderings/stop rules).
[[nodiscard]] std::unique_ptr<Policy> make_policy(PolicyKind kind,
                                                  const DecisionOptions& sophon_options = {});

/// All five policies in the paper's presentation order.
[[nodiscard]] std::vector<std::unique_ptr<Policy>> make_all_policies();

}  // namespace sophon::core
