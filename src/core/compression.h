// Extension (paper §6 future work): selective compression of offloaded
// payloads.
//
// A sample offloaded at the post-crop stage travels as 224x224x3 raw pixels
// (~147 KiB). The storage node can SJPG-re-encode that payload before
// shipping and the compute node decode it on arrival — trading extra CPU on
// both sides for less traffic. Like offloading itself, this only pays off
// for some samples (smooth crops compress well; noisy ones barely), so the
// decision is again greedy by bytes-saved-per-CPU-second while the network
// stays predominant.
#pragma once

#include <functional>
#include <vector>

#include "core/decision.h"
#include "core/metrics.h"
#include "core/plan.h"
#include "dataset/catalog.h"
#include "pipeline/cost_model.h"
#include "pipeline/pipeline.h"
#include "sim/trainer.h"

namespace sophon::core {

/// Rate/cost model for re-encoding an image payload. Calibrated against the
/// real SJPG codec (tests/compression_model_test.cc checks the estimates
/// track real encodes within a factor of two across the texture range).
struct CompressionModel {
  int quality = 80;
  // Rate model: bits per pixel grows with texture; quantisation (coarser at
  // lower quality) divides it. Constants fitted against real SJPG encodes
  // of 224x224 synthetic crops (see tests/core_compression_test.cc).
  double base_bpp = 3.9;
  double texture_bpp = 6.5;
  double texture_exponent = 1.3;
  // CPU model, per pixel.
  double encode_ns_per_pixel = 30.0;
  double decode_ns_per_pixel = 18.0;

  /// Estimated compressed payload size for an image of `pixels` pixels with
  /// the given texture parameter in [0, 1].
  [[nodiscard]] Bytes estimate_compressed(std::int64_t pixels, double texture) const;

  [[nodiscard]] Seconds encode_cost(std::int64_t pixels) const;
  [[nodiscard]] Seconds decode_cost(std::int64_t pixels) const;
};

/// A plan with optional per-sample payload compression on top of the
/// offload prefixes.
struct CompressedPlan {
  OffloadPlan base;
  std::vector<bool> compress;  // parallel to the catalog
  std::size_t compressed_count = 0;
  EpochCostVector final_cost;
};

/// Extend a decided offload plan with selective compression: considers every
/// sample whose offloaded payload is an uncompressed image, orders by
/// bytes-saved per storage-CPU-second, and applies while the network remains
/// the predominant epoch cost.
[[nodiscard]] CompressedPlan decide_compression(const std::vector<SampleProfile>& profiles,
                                                const dataset::Catalog& catalog,
                                                const pipeline::Pipeline& pipeline,
                                                const OffloadPlan& base,
                                                EpochCostVector base_cost,
                                                const sim::ClusterConfig& cluster,
                                                const CompressionModel& model);

/// Per-sample flows for the simulator under a compressed plan.
[[nodiscard]] std::function<sim::SampleFlow(std::size_t)> make_compressed_flows(
    const CompressedPlan& plan, const dataset::Catalog& catalog,
    const pipeline::Pipeline& pipeline, const pipeline::CostModel& cost_model,
    const CompressionModel& model);

}  // namespace sophon::core
