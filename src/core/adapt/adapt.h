// Online adaptive re-planning: closing the §3.2 loop at runtime.
//
// The greedy decision engine computes one plan from the two-stage profile,
// calibrated to the cluster shape it was told about. The paper's own premise
// — network-time dominance shifts with bandwidth and storage-CPU headroom —
// means that plan drifts when the runtime disagrees with the calibration:
// the link degrades, a competing tenant eats storage cores, faults demote
// offloaded fetches to raw. DS-Analyzer's lesson (see PAPERS.md) is that
// stall attribution only pays off when it feeds back into configuration;
// this module is that feedback edge.
//
// At every epoch boundary the AdaptiveReplanner compares what the epoch
// *measured* (an EpochObservation, folded from sim::EpochStats or an
// obs::EpochReport) against what the current plan *predicted* (its
// EpochCostVector). When the drift exceeds a threshold it re-fits the link
// and storage-CPU coefficients from the measurements, re-runs the greedy
// offloading-efficiency decision with those measured coefficients, and — if
// the candidate plan clears a relative-improvement floor — swaps it in for
// the next epoch. Hysteresis (a cooldown of epochs between re-plans plus
// the improvement floor) keeps an oscillating environment from thrashing
// the plan.
//
// Plan-swap safety: plans are handed out as shared_ptr leases. An epoch in
// flight (a DataLoader and its prefetch scheduler, or a simulated epoch's
// flow function) holds its lease for its whole lifetime, so a re-plan never
// changes directives under in-flight prefetch credits or staged samples —
// the new plan takes effect at the next epoch boundary, when the next
// consumer takes a fresh lease.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "core/decision.h"
#include "core/metrics.h"
#include "core/plan.h"
#include "obs/report.h"
#include "sim/cluster.h"
#include "sim/trainer.h"
#include "util/telemetry.h"
#include "util/units.h"

namespace sophon::core::adapt {

/// What one finished epoch measured, in the decision engine's currency.
struct EpochObservation {
  /// Measured per-stage self times, component-matched to the predicted
  /// §3.2 cost vector.
  EpochCostVector observed;
  Bytes traffic;       // bytes the link actually carried
  Seconds epoch_time;  // measured epoch makespan
  std::uint64_t retries = 0;  // fetch retries absorbed by the resilience layer
  std::size_t degraded = 0;   // samples demoted to the raw flow
  std::size_t samples = 0;

  /// Observed fault pressure: fraction of samples that lost their offload.
  [[nodiscard]] double degraded_rate() const {
    return samples == 0 ? 0.0 : static_cast<double>(degraded) / static_cast<double>(samples);
  }
};

/// Fold a simulated epoch's stats into an observation. `actual` is the
/// cluster the epoch really ran on (which the planner does not get to see);
/// `faults` optionally carries the epoch's fault-replay impact.
[[nodiscard]] EpochObservation observe_epoch(const sim::EpochStats& stats,
                                             const sim::ClusterConfig& actual,
                                             const sim::FaultReplayStats* faults = nullptr);

/// Fold a traced epoch's stall attribution into an observation — the
/// EpochReport → decision feedback path. `traffic` is the epoch's wire
/// bytes (the report holds times, not bytes).
[[nodiscard]] EpochObservation observe_report(const obs::EpochReport& report, Bytes traffic);

/// Component-wise divergence between prediction and measurement. Each
/// component's drift is |observed - predicted| normalised by the predicted
/// epoch time (the bottleneck component), so "t_net drifted by 0.5" means
/// the link moved by half a predicted epoch — a scale on which one
/// threshold works for every component.
struct DriftReport {
  double t_g = 0.0;
  double t_cc = 0.0;
  double t_cs = 0.0;
  double t_net = 0.0;
  double max_drift = 0.0;
  std::string_view worst = "none";  // component with the largest drift
  bool bottleneck_shifted = false;  // predicted and observed disagree on it
};

[[nodiscard]] DriftReport measure_drift(const EpochCostVector& predicted,
                                        const EpochCostVector& observed);

/// The planned cluster with the measured coefficients folded in: link
/// bandwidth re-fit from traffic / observed t_net, storage core speed
/// scaled by predicted/observed t_cs. Knobs the observation says nothing
/// about (core counts, batch size) are kept as planned.
[[nodiscard]] sim::ClusterConfig calibrate_cluster(const sim::ClusterConfig& planned,
                                                   const EpochCostVector& predicted,
                                                   const EpochObservation& observation);

struct AdaptOptions {
  /// Re-plan only when DriftReport::max_drift strictly exceeds this
  /// (drift exactly at the threshold does not trigger).
  double drift_threshold = 0.2;
  /// Hysteresis: minimum epochs between two accepted re-plans. 1 = every
  /// epoch boundary may re-plan.
  std::size_t replan_cooldown = 2;
  /// Hysteresis: a candidate plan must predict at least this relative
  /// epoch-time improvement over the current plan (both evaluated under the
  /// measured coefficients) to be swapped in.
  double min_improvement = 0.05;
  /// Optional telemetry: pre-registers and feeds the sophon_replan_* set.
  MetricsRegistry* metrics = nullptr;
};

enum class ReplanOutcome : std::uint8_t {
  kNoDrift,                ///< drift within threshold; plan kept
  kSuppressedCooldown,     ///< drift exceeded, but a re-plan is too recent
  kSuppressedImprovement,  ///< re-planned, but the candidate's predicted
                           ///< improvement is below the floor; plan kept and
                           ///< the prediction re-anchored to the measured
                           ///< coefficients (so the same drift stops firing)
  kReplanned,              ///< new plan swapped in for the next epoch
};

[[nodiscard]] std::string_view replan_outcome_name(ReplanOutcome outcome);

/// What one epoch-boundary check decided.
struct ReplanDecision {
  ReplanOutcome outcome = ReplanOutcome::kNoDrift;
  DriftReport drift;
  /// Relative predicted epoch-time improvement of the candidate plan under
  /// the measured coefficients (meaningful for kReplanned /
  /// kSuppressedImprovement).
  double improvement = 0.0;
  /// The prediction in force for the next epoch.
  EpochCostVector predicted;
};

/// The online re-planning engine. Owns the stage-2 profiles and the current
/// plan; call begin_epoch / end_epoch around every training epoch.
class AdaptiveReplanner {
 public:
  /// `planned` is the cluster the initial calibration believed in;
  /// `gpu_epoch_time` is T_G for one epoch. When `initial_plan` is null the
  /// constructor runs the greedy decision to produce it.
  AdaptiveReplanner(std::vector<SampleProfile> profiles, const sim::ClusterConfig& planned,
                    Seconds gpu_epoch_time, AdaptOptions options = {},
                    std::shared_ptr<const OffloadPlan> initial_plan = nullptr);

  /// Lease on the plan for the upcoming (or running) epoch. Hold it for the
  /// epoch's whole lifetime: re-plans install a *new* plan object and never
  /// mutate a leased one.
  [[nodiscard]] std::shared_ptr<const OffloadPlan> plan() const { return plan_; }

  /// The cost vector the current plan predicts under the latest calibration.
  [[nodiscard]] const EpochCostVector& predicted() const { return predicted_; }

  /// The cluster coefficients the current prediction is calibrated to.
  [[nodiscard]] const sim::ClusterConfig& calibrated() const { return calibrated_; }

  /// Number of accepted re-plans so far (0 = still the initial plan).
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// Mark the epoch about to run. Re-plans only happen in end_epoch, i.e.
  /// outside a begin/end pair — the safe boundary.
  void begin_epoch(std::size_t epoch_index);

  /// Close the epoch with its measurements and decide: keep, suppress, or
  /// re-plan. A re-plan swaps the plan lease handed to the *next* epoch.
  ReplanDecision end_epoch(const EpochObservation& observation);

 private:
  std::vector<SampleProfile> profiles_;
  sim::ClusterConfig planned_;     // as-configured knobs (cores, batch, ...)
  sim::ClusterConfig calibrated_;  // with measured coefficients folded in
  Seconds gpu_epoch_time_;
  AdaptOptions options_;
  std::shared_ptr<const OffloadPlan> plan_;
  EpochCostVector predicted_;
  std::uint64_t generation_ = 0;
  bool in_epoch_ = false;
  std::size_t epoch_index_ = 0;
  bool has_replanned_ = false;
  std::size_t last_replan_epoch_ = 0;
};

}  // namespace sophon::core::adapt
