#include "core/adapt/loop.h"

#include <cmath>
#include <utility>

#include "core/profiler.h"
#include "net/wire.h"
#include "util/check.h"

namespace sophon::core::adapt {

namespace {

// Flow for one sample under a leased plan. The lease is captured by value:
// even if the replanner swaps plans mid-run, this epoch keeps computing
// against the plan it started with.
std::function<sim::SampleFlow(std::size_t)> flow_under(
    std::shared_ptr<const OffloadPlan> lease, const dataset::Catalog& catalog,
    const pipeline::Pipeline& pipeline, const pipeline::CostModel& cost_model) {
  return [lease = std::move(lease), &catalog, &pipeline, &cost_model](std::size_t i) {
    const auto& meta = catalog.sample(i);
    const std::size_t prefix = lease == nullptr ? 0 : lease->prefix(i);
    sim::SampleFlow flow;
    flow.storage_cpu = prefix > 0 ? pipeline.prefix_cost(meta.raw, prefix, cost_model)
                                  : Seconds(0.0);
    flow.wire = net::wire_size(pipeline.shape_at(meta.raw, prefix));
    flow.compute_cpu = pipeline.suffix_cost(meta.raw, prefix, cost_model);
    return flow;
  };
}

}  // namespace

RunResult run_adaptive(const dataset::Catalog& catalog, const pipeline::Pipeline& pipeline,
                       const pipeline::CostModel& cost_model, const sim::ClusterConfig& planned,
                       Seconds gpu_batch_time, const RunOptions& options) {
  SOPHON_CHECK(!catalog.empty());
  SOPHON_CHECK(options.epochs > 0);

  const std::size_t num_batches =
      (catalog.size() + planned.batch_size - 1) / planned.batch_size;
  const Seconds gpu_epoch_time = gpu_batch_time * static_cast<double>(num_batches);

  // One replanner for both modes keeps the initial plan identical between a
  // static run and an adaptive run — the comparison the ablation makes.
  AdaptiveReplanner replanner(profile_stage2(catalog, pipeline, cost_model), planned,
                              gpu_epoch_time, options.adapt_options, options.initial_plan);

  RunResult result;
  result.rows.reserve(options.epochs);
  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    sim::ClusterConfig actual = planned;
    if (options.bandwidth_at) actual.bandwidth = options.bandwidth_at(epoch);

    auto lease = replanner.plan();
    auto flow = flow_under(lease, catalog, pipeline, cost_model);
    sim::FaultReplayStats fault_stats;
    if (options.faults != nullptr) {
      flow = sim::faulty_flow(std::move(flow), flow_under(nullptr, catalog, pipeline, cost_model),
                              *options.faults, options.retry, epoch, &fault_stats);
    }

    if (options.adapt) replanner.begin_epoch(epoch);
    const sim::EpochStats stats = simulate_epoch_flows(catalog.size(), flow, actual,
                                                       gpu_batch_time, options.seed, epoch);
    const EpochObservation observation = observe_epoch(
        stats, actual, options.faults != nullptr ? &fault_stats : nullptr);

    EpochRow row;
    row.epoch = epoch;
    row.actual_mbps = actual.bandwidth.bps() / 1e6;
    row.plan_generation = replanner.generation();
    row.offloaded = lease->offloaded_count();
    row.epoch_time = stats.epoch_time;
    row.traffic = stats.traffic;
    row.retries = observation.retries;
    row.degraded = observation.degraded;
    if (options.adapt) {
      row.decision = replanner.end_epoch(observation);
      if (row.decision.outcome == ReplanOutcome::kReplanned) ++result.replans;
    }
    result.rows.push_back(row);
  }
  result.final_plan = replanner.plan();
  return result;
}

}  // namespace sophon::core::adapt
