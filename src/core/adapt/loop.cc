#include "core/adapt/loop.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>

#include "core/decision.h"
#include "core/profiler.h"
#include "net/wire.h"
#include "obs/critpath/monitor.h"
#include "obs/health.h"
#include "obs/ledger.h"
#include "obs/metrics_table.h"
#include "obs/timeseries.h"
#include "util/check.h"

namespace sophon::core::adapt {

namespace {

/// Background wall-clock sampler: folds the registry into the flight
/// recorder every `interval` while a (possibly long) epoch simulates.
/// Stopping is a cv notify so run_adaptive never waits out a full period.
class IntervalSampler {
 public:
  IntervalSampler(sophon::obs::FlightRecorder& recorder, Seconds interval)
      : recorder_(recorder),
        interval_(std::chrono::duration<double>(std::max(interval.value(), 1e-3))),
        thread_([this] { run(); }) {}

  ~IntervalSampler() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!done_) {
      if (cv_.wait_for(lock, interval_, [this] { return done_; })) break;
      lock.unlock();
      recorder_.sample();
      lock.lock();
    }
  }

  sophon::obs::FlightRecorder& recorder_;
  const std::chrono::duration<double> interval_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

// Flow for one sample under a leased plan. The lease is captured by value:
// even if the replanner swaps plans mid-run, this epoch keeps computing
// against the plan it started with.
std::function<sim::SampleFlow(std::size_t)> flow_under(
    std::shared_ptr<const OffloadPlan> lease, const dataset::Catalog& catalog,
    const pipeline::Pipeline& pipeline, const pipeline::CostModel& cost_model) {
  return [lease = std::move(lease), &catalog, &pipeline, &cost_model](std::size_t i) {
    const auto& meta = catalog.sample(i);
    const std::size_t prefix = lease == nullptr ? 0 : lease->prefix(i);
    sim::SampleFlow flow;
    flow.storage_cpu = prefix > 0 ? pipeline.prefix_cost(meta.raw, prefix, cost_model)
                                  : Seconds(0.0);
    flow.wire = net::wire_size(pipeline.shape_at(meta.raw, prefix));
    flow.compute_cpu = pipeline.suffix_cost(meta.raw, prefix, cost_model);
    flow.stage = static_cast<std::uint8_t>(prefix);
    return flow;
  };
}

}  // namespace

RunResult run_adaptive(const dataset::Catalog& catalog, const pipeline::Pipeline& pipeline,
                       const pipeline::CostModel& cost_model, const sim::ClusterConfig& planned,
                       Seconds gpu_batch_time, const RunOptions& options) {
  SOPHON_CHECK(!catalog.empty());
  SOPHON_CHECK(options.epochs > 0);

  const std::size_t num_batches =
      (catalog.size() + planned.batch_size - 1) / planned.batch_size;
  const Seconds gpu_epoch_time = gpu_batch_time * static_cast<double>(num_batches);

  const TelemetryHooks& telemetry = options.telemetry;

  // One replanner for both modes keeps the initial plan identical between a
  // static run and an adaptive run — the comparison the ablation makes.
  auto profiles = profile_stage2(catalog, pipeline, cost_model);
  // Plans from decide_offloading carry their own traffic forecast; an
  // explicit initial plan does not, so keep the profiles around to price
  // its receipt for the ledger's savings table.
  std::vector<SampleProfile> forecast_profiles;
  if (telemetry.ledger != nullptr && options.initial_plan != nullptr) {
    forecast_profiles = profiles;
  }
  AdaptiveReplanner replanner(std::move(profiles), planned, gpu_epoch_time,
                              options.adapt_options, options.initial_plan);

  if (telemetry.metrics != nullptr) obs::register_epoch_metrics(*telemetry.metrics);
  std::unique_ptr<IntervalSampler> sampler;
  if (telemetry.recorder != nullptr && telemetry.sample_interval.value() > 0.0) {
    sampler = std::make_unique<IntervalSampler>(*telemetry.recorder, telemetry.sample_interval);
  }

  RunResult result;
  result.rows.reserve(options.epochs);
  std::uint64_t forecast_noted_generation = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    if (telemetry.stop_signal != nullptr) {
      const int signum = telemetry.stop_signal->load(std::memory_order_acquire);
      if (signum != 0) {
        result.stopped_by_signal = signum;
        break;
      }
    }
    sim::ClusterConfig actual = planned;
    if (options.bandwidth_at) actual.bandwidth = options.bandwidth_at(epoch);

    auto lease = replanner.plan();
    auto flow = flow_under(lease, catalog, pipeline, cost_model);
    sim::FaultReplayStats fault_stats;
    if (options.faults != nullptr) {
      flow = sim::faulty_flow(std::move(flow), flow_under(nullptr, catalog, pipeline, cost_model),
                              *options.faults, options.retry, epoch, &fault_stats,
                              telemetry.ledger);
    } else if (telemetry.ledger != nullptr) {
      // Fault-free epochs have a single cause: every sample's bytes are a
      // demand fetch at its planned stage. (Safe because the DES calls the
      // flow exactly once per sample.)
      flow = [inner = std::move(flow), ledger = telemetry.ledger](std::size_t i) {
        auto f = inner(i);
        ledger->record(i, f.stage, obs::TrafficCause::kDemand, f.wire);
        return f;
      };
    }
    // Capture the demands the DES is about to schedule so the critical-path
    // analyzer can re-time this exact epoch. The wrapper is outermost — after
    // the fault/ledger wraps above — so captured demands include retry
    // penalties and the ledger is not charged twice. Safe because
    // simulate_epoch_flows calls the flow exactly once per sample.
    std::vector<obs::critpath::SampleDemand> demands;
    if (telemetry.critpath != nullptr) {
      demands.resize(catalog.size());
      flow = [inner = std::move(flow), &demands](std::size_t i) {
        const auto f = inner(i);
        demands[i] = obs::critpath::SampleDemand{f.storage_cpu, f.compute_cpu, f.wire, f.delay};
        return f;
      };
    }
    if (telemetry.ledger != nullptr && replanner.generation() != forecast_noted_generation) {
      forecast_noted_generation = replanner.generation();
      if (const auto& forecast = lease->traffic_forecast()) {
        telemetry.ledger->note_plan_forecast(forecast_noted_generation, forecast->baseline,
                                             forecast->predicted);
      } else if (!forecast_profiles.empty()) {
        const auto priced = forecast_plan_traffic(forecast_profiles, *lease);
        telemetry.ledger->note_plan_forecast(forecast_noted_generation, priced.baseline,
                                             priced.predicted);
      }
    }

    if (options.adapt) replanner.begin_epoch(epoch);
    const sim::EpochStats stats = simulate_epoch_flows(catalog.size(), flow, actual,
                                                       gpu_batch_time, options.seed, epoch);
    const EpochObservation observation = observe_epoch(
        stats, actual, options.faults != nullptr ? &fault_stats : nullptr);

    EpochRow row;
    row.epoch = epoch;
    row.actual_mbps = actual.bandwidth.bps() / 1e6;
    row.plan_generation = replanner.generation();
    row.offloaded = lease->offloaded_count();
    row.epoch_time = stats.epoch_time;
    row.traffic = stats.traffic;
    row.retries = observation.retries;
    row.degraded = observation.degraded;
    if (options.adapt) {
      row.decision = replanner.end_epoch(observation);
      if (row.decision.outcome == ReplanOutcome::kReplanned) ++result.replans;
    }
    result.rows.push_back(row);

    if (telemetry.ledger != nullptr) {
      // Close the ledger's books for this epoch before the health pass below
      // so the freshly published sophon_ledger_unattributed_bytes gauge is
      // part of the snapshot the health rules see.
      telemetry.ledger->end_epoch(epoch, stats.traffic, row.plan_generation);
    }

    if (telemetry.critpath != nullptr) {
      // Re-time the finished epoch before the health pass below so the
      // bottleneck_migrated rule evaluates against fresh critpath metrics.
      obs::critpath::EpochParams params;
      params.cluster = actual;
      params.gpu_batch_time = gpu_batch_time;
      params.seed = options.seed;
      params.epoch_index = epoch;
      params.num_samples = catalog.size();
      params.discipline = obs::critpath::Discipline::kBatchWindow;
      telemetry.critpath->observe_epoch(
          [&demands](std::size_t i) { return demands[i]; }, params, stats.epoch_time);
    }

    if (telemetry.metrics != nullptr) {
      MetricsRegistry& metrics = *telemetry.metrics;
      metrics.counter("sophon_epochs_completed").increment();
      metrics.counter("sophon_epoch_traffic_bytes")
          .increment(static_cast<std::uint64_t>(std::max<std::int64_t>(stats.traffic.count(), 0)));
      metrics.gauge("sophon_epoch_time_seconds").set(stats.epoch_time.value());
      metrics.gauge("sophon_epoch_gpu_utilization").set(stats.gpu_utilization);
      const double epoch_seconds = stats.epoch_time.value();
      const double link_seconds = actual.bandwidth.transfer_time(stats.traffic).value();
      const double link_utilization =
          epoch_seconds > 0.0 ? std::min(link_seconds / epoch_seconds, 1.0) : 0.0;
      metrics.gauge("sophon_epoch_link_utilization").set(link_utilization);
      const double stall_seconds = std::max(0.0, link_seconds - stats.gpu_busy.value());
      metrics.gauge("sophon_epoch_fetch_stall_fraction")
          .set(epoch_seconds > 0.0 ? std::min(stall_seconds / epoch_seconds, 1.0) : 0.0);
      if (options.faults != nullptr) {
        metrics.counter("sophon_fetch_retries").increment(fault_stats.retries);
        metrics.counter("sophon_degraded_samples").increment(fault_stats.degraded);
        metrics.counter("sophon_fetch_failures").increment(fault_stats.failed);
      }
      if (telemetry.health != nullptr) {
        const obs::HealthState state =
            telemetry.health->evaluate(metrics.snapshot(), stats.epoch_time);
        metrics.gauge("sophon_health_state").set(static_cast<double>(state));
      }
    }
    if (telemetry.recorder != nullptr) telemetry.recorder->sample();
    if (telemetry.on_epoch) telemetry.on_epoch(row);
  }
  result.final_plan = replanner.plan();
  return result;
}

}  // namespace sophon::core::adapt
