#include "core/adapt/adapt.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/trace.h"
#include "util/check.h"

namespace sophon::core::adapt {

namespace {

constexpr const char* kChecksCounter = "sophon_replan_checks";
constexpr const char* kTriggeredCounter = "sophon_replan_triggered";
constexpr const char* kCooldownCounter = "sophon_replan_suppressed_cooldown";
constexpr const char* kImprovementCounter = "sophon_replan_suppressed_improvement";

void pre_register(MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  metrics->set_help(kChecksCounter, "Epoch boundaries the replanner examined.");
  metrics->set_help(kTriggeredCounter, "Re-plans accepted and swapped in.");
  metrics->set_help(kCooldownCounter, "Drifted epochs suppressed by the re-plan cooldown.");
  metrics->set_help(kImprovementCounter,
                    "Candidate plans rejected by the relative-improvement floor.");
  metrics->counter(kChecksCounter).increment(0);
  metrics->counter(kTriggeredCounter).increment(0);
  metrics->counter(kCooldownCounter).increment(0);
  metrics->counter(kImprovementCounter).increment(0);
  metrics->gauge("sophon_replan_drift").set(0.0);
  metrics->gauge("sophon_replan_improvement_estimate").set(0.0);
  metrics->gauge("sophon_replan_generation").set(0.0);
}

}  // namespace

EpochObservation observe_epoch(const sim::EpochStats& stats, const sim::ClusterConfig& actual,
                               const sim::FaultReplayStats* faults) {
  EpochObservation obs;
  obs.observed.t_g = stats.gpu_busy;
  obs.observed.t_cc = stats.compute_cpu_busy / static_cast<double>(actual.compute_cores);
  const double storage_capacity =
      static_cast<double>(actual.storage_cores) * actual.storage_core_speed;
  obs.observed.t_cs =
      storage_capacity > 0.0 ? stats.storage_cpu_busy / storage_capacity : Seconds(0.0);
  obs.observed.t_net = actual.bandwidth.transfer_time(stats.traffic);
  obs.traffic = stats.traffic;
  obs.epoch_time = stats.epoch_time;
  obs.samples = stats.samples;
  if (faults != nullptr) {
    obs.retries = faults->retries;
    obs.degraded = faults->degraded;
  }
  return obs;
}

EpochObservation observe_report(const obs::EpochReport& report, Bytes traffic) {
  EpochObservation obs;
  const auto costs = report.observed();
  obs.observed.t_g = costs.t_g;
  obs.observed.t_cc = costs.t_cc;
  obs.observed.t_cs = costs.t_cs;
  obs.observed.t_net = costs.t_net;
  obs.traffic = traffic;
  obs.epoch_time = report.wall();
  return obs;
}

DriftReport measure_drift(const EpochCostVector& predicted, const EpochCostVector& observed) {
  DriftReport report;
  double denom = predicted.predicted_epoch_time().value();
  if (denom <= 0.0) denom = std::max(observed.predominant().value(), 1e-12);
  report.t_g = std::abs(observed.t_g.value() - predicted.t_g.value()) / denom;
  report.t_cc = std::abs(observed.t_cc.value() - predicted.t_cc.value()) / denom;
  report.t_cs = std::abs(observed.t_cs.value() - predicted.t_cs.value()) / denom;
  report.t_net = std::abs(observed.t_net.value() - predicted.t_net.value()) / denom;
  report.max_drift = report.t_g;
  report.worst = "t_g";
  const std::pair<double, std::string_view> rest[] = {
      {report.t_cc, "t_cc"}, {report.t_cs, "t_cs"}, {report.t_net, "t_net"}};
  for (const auto& [value, name] : rest) {
    if (value > report.max_drift) {
      report.max_drift = value;
      report.worst = name;
    }
  }
  report.bottleneck_shifted = predicted.bottleneck() != observed.bottleneck();
  return report;
}

sim::ClusterConfig calibrate_cluster(const sim::ClusterConfig& planned,
                                     const EpochCostVector& predicted,
                                     const EpochObservation& observation) {
  sim::ClusterConfig calibrated = planned;
  if (observation.observed.t_net.value() > 0.0 && observation.traffic.count() > 0) {
    calibrated.bandwidth = Bandwidth::bits_per_sec(8.0 * observation.traffic.as_double() /
                                                   observation.observed.t_net.value());
  }
  if (predicted.t_cs.value() > 0.0 && observation.observed.t_cs.value() > 0.0) {
    calibrated.storage_core_speed =
        planned.storage_core_speed * (predicted.t_cs / observation.observed.t_cs);
  }
  return calibrated;
}

std::string_view replan_outcome_name(ReplanOutcome outcome) {
  switch (outcome) {
    case ReplanOutcome::kNoDrift: return "no-drift";
    case ReplanOutcome::kSuppressedCooldown: return "suppressed-cooldown";
    case ReplanOutcome::kSuppressedImprovement: return "suppressed-improvement";
    case ReplanOutcome::kReplanned: return "replanned";
  }
  return "unknown";
}

AdaptiveReplanner::AdaptiveReplanner(std::vector<SampleProfile> profiles,
                                     const sim::ClusterConfig& planned, Seconds gpu_epoch_time,
                                     AdaptOptions options,
                                     std::shared_ptr<const OffloadPlan> initial_plan)
    : profiles_(std::move(profiles)),
      planned_(planned),
      calibrated_(planned),
      gpu_epoch_time_(gpu_epoch_time),
      options_(options) {
  SOPHON_CHECK(!profiles_.empty());
  SOPHON_CHECK(options_.replan_cooldown >= 1);
  pre_register(options_.metrics);
  if (initial_plan != nullptr) {
    SOPHON_CHECK(initial_plan->size() == profiles_.size());
    plan_ = std::move(initial_plan);
    predicted_ = evaluate_plan(profiles_, *plan_, calibrated_, gpu_epoch_time_);
  } else {
    auto result = decide_offloading(profiles_, calibrated_, gpu_epoch_time_);
    plan_ = std::make_shared<const OffloadPlan>(std::move(result.plan));
    predicted_ = result.final_cost;
  }
}

void AdaptiveReplanner::begin_epoch(std::size_t epoch_index) {
  SOPHON_CHECK_MSG(!in_epoch_, "begin_epoch while an epoch is already open");
  in_epoch_ = true;
  epoch_index_ = epoch_index;
}

ReplanDecision AdaptiveReplanner::end_epoch(const EpochObservation& observation) {
  SOPHON_CHECK_MSG(in_epoch_, "end_epoch without begin_epoch");
  in_epoch_ = false;

  // A span per decision: virtual-epoch work is instantaneous in wall time,
  // so the span's value is its name (the outcome) and its presence on the
  // timeline, not its duration.
  obs::Span span(obs::SpanCategory::kOther, "replan-check");

  ReplanDecision decision;
  decision.drift = measure_drift(predicted_, observation.observed);
  decision.predicted = predicted_;
  auto* metrics = options_.metrics;
  if (metrics != nullptr) {
    metrics->counter(kChecksCounter).increment();
    metrics->gauge("sophon_replan_drift").set(decision.drift.max_drift);
  }

  if (decision.drift.max_drift <= options_.drift_threshold) {
    decision.outcome = ReplanOutcome::kNoDrift;
    return decision;
  }

  // Hysteresis gate 1: cooldown. The prediction stays un-anchored so the
  // drift is re-examined as soon as the cooldown expires.
  if (has_replanned_ && epoch_index_ - last_replan_epoch_ < options_.replan_cooldown) {
    decision.outcome = ReplanOutcome::kSuppressedCooldown;
    if (metrics != nullptr) metrics->counter(kCooldownCounter).increment();
    return decision;
  }

  // Re-fit the coefficients from the measurements and re-run the greedy
  // with them; T_G is re-anchored to the measured GPU busy time when the
  // epoch saw any.
  calibrated_ = calibrate_cluster(planned_, predicted_, observation);
  if (observation.observed.t_g.value() > 0.0) gpu_epoch_time_ = observation.observed.t_g;
  auto candidate = decide_offloading(profiles_, calibrated_, gpu_epoch_time_);
  const EpochCostVector current_cost =
      evaluate_plan(profiles_, *plan_, calibrated_, gpu_epoch_time_);
  const double current_time = current_cost.predicted_epoch_time().value();
  decision.improvement =
      current_time <= 0.0
          ? 0.0
          : (current_time - candidate.final_cost.predicted_epoch_time().value()) / current_time;
  if (metrics != nullptr) {
    metrics->gauge("sophon_replan_improvement_estimate").set(decision.improvement);
  }

  // Hysteresis gate 2: improvement floor. Keep the plan but adopt the
  // measured coefficients as the new prediction, so the same (now
  // explained) conditions stop registering as drift.
  if (decision.improvement < options_.min_improvement) {
    predicted_ = current_cost;
    decision.outcome = ReplanOutcome::kSuppressedImprovement;
    decision.predicted = predicted_;
    if (metrics != nullptr) metrics->counter(kImprovementCounter).increment();
    return decision;
  }

  // Swap at the boundary: a fresh plan object replaces the lease handed to
  // the next epoch; epochs still holding the old lease stay consistent.
  plan_ = std::make_shared<const OffloadPlan>(std::move(candidate.plan));
  predicted_ = candidate.final_cost;
  ++generation_;
  has_replanned_ = true;
  last_replan_epoch_ = epoch_index_;
  decision.outcome = ReplanOutcome::kReplanned;
  decision.predicted = predicted_;
  if (metrics != nullptr) {
    metrics->counter(kTriggeredCounter).increment();
    metrics->gauge("sophon_replan_generation").set(static_cast<double>(generation_));
  }
  return decision;
}

}  // namespace sophon::core::adapt
