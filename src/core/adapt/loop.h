// Multi-epoch training loop over the discrete-event simulator with the
// adaptive re-planner in the driver's seat.
//
// Each epoch runs under the *actual* cluster conditions (a per-epoch
// bandwidth schedule models environment drift — e.g. a mid-run link
// degradation — and an optional fault injector replays fetch faults), while
// the planner only ever sees what it measured. With adapt on, the
// AdaptiveReplanner checks drift at every epoch boundary and may swap the
// plan; with adapt off the initial plan runs the whole job — the static
// baseline every adaptive result is compared against.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/adapt/adapt.h"
#include "dataset/catalog.h"
#include "net/fault.h"
#include "net/resilience.h"
#include "pipeline/cost_model.h"
#include "pipeline/pipeline.h"

namespace sophon::obs {
class FlightRecorder;
class HealthEvaluator;
class TrafficLedger;
}  // namespace sophon::obs

namespace sophon::obs::critpath {
class CritPathMonitor;
}  // namespace sophon::obs::critpath

namespace sophon::core::adapt {

/// One epoch of an adaptive (or static) run.
struct EpochRow {
  std::size_t epoch = 0;
  double actual_mbps = 0.0;        // link the epoch really ran at
  std::uint64_t plan_generation = 0;  // plan in force during this epoch
  std::size_t offloaded = 0;       // offloaded samples in that plan
  Seconds epoch_time;
  Bytes traffic;
  std::uint64_t retries = 0;
  std::size_t degraded = 0;
  /// The boundary decision taken after this epoch (kNoDrift for static
  /// runs, which never consult the replanner).
  ReplanDecision decision;
};

/// Live telemetry wired into the run loop. Everything is optional and
/// observational: absent hooks cost nothing (acceptance-pinned by
/// bench/trace_overhead), present hooks never change the simulation.
struct TelemetryHooks {
  /// Receives the epoch-level gauge/counter set (sophon_epoch_*,
  /// sophon_epochs_completed, sophon_health_state) at each epoch boundary.
  MetricsRegistry* metrics = nullptr;
  /// Sampled at every epoch boundary, and from a background wall-clock
  /// sampler when sample_interval > 0 (so a long epoch still produces
  /// points a live scrape can see move).
  obs::FlightRecorder* recorder = nullptr;
  /// Evaluated at every epoch boundary against `metrics` (requires both);
  /// the resulting overall state lands in the sophon_health_state gauge.
  obs::HealthEvaluator* health = nullptr;
  /// Per-cause traffic attribution (obs/ledger.h): every epoch's wire
  /// bytes are recorded per sample (demand / retry / raw-fallback under
  /// fault replay) and the books are closed at each boundary —
  /// ledger->end_epoch reconciles against the epoch's link bytes and
  /// publishes sophon_ledger_* before the health rules run. Plans carry
  /// their decide_offloading traffic forecast into the ledger's savings
  /// table. Construct the ledger with the same registry as `metrics` so
  /// the ledger_unattributed health rule sees its gauge.
  obs::TrafficLedger* ledger = nullptr;
  /// Critical-path analyzer (obs/critpath/monitor.h): when present, each
  /// epoch's per-sample demands are captured and re-timed at the boundary,
  /// publishing the sophon_critpath_* blame gauges and the bottleneck
  /// migration counter before the health rules run — so re-planning and the
  /// bottleneck_migrated rule can consult the blame vector.
  obs::critpath::CritPathMonitor* critpath = nullptr;
  /// Called after the boundary's metrics/recorder/health updates.
  std::function<void(const EpochRow&)> on_epoch;
  /// Wall-clock period of the background recorder sampler; <= 0 disables.
  Seconds sample_interval{0.0};
  /// Deferred-signal mailbox (see obs::PostmortemGuard::stop_signal()):
  /// a non-zero value stops the run at the next epoch boundary.
  const std::atomic<int>* stop_signal = nullptr;
};

struct RunOptions {
  std::size_t epochs = 8;
  /// false = static baseline: keep the initial plan for the whole run.
  bool adapt = true;
  AdaptOptions adapt_options;
  /// Actual link bandwidth per epoch. Empty = the planned bandwidth holds.
  std::function<Bandwidth(std::size_t epoch)> bandwidth_at;
  /// Initial plan; null = run the greedy decision under `planned` first.
  std::shared_ptr<const OffloadPlan> initial_plan;
  /// Optional fetch-fault replay (see sim::faulty_flow); degraded samples
  /// surface in the observation the replanner sees.
  const net::FaultInjector* faults = nullptr;
  net::RetryPolicy retry;
  std::uint64_t seed = 42;
  TelemetryHooks telemetry;
};

struct RunResult {
  std::vector<EpochRow> rows;
  std::size_t replans = 0;
  std::shared_ptr<const OffloadPlan> final_plan;
  /// Signal that stopped the run early via TelemetryHooks::stop_signal,
  /// 0 for a run that completed all epochs.
  int stopped_by_signal = 0;
};

/// Run `options.epochs` simulated epochs. `planned` is the cluster the
/// initial plan is calibrated against; `gpu_batch_time` the GPU service
/// time per batch.
[[nodiscard]] RunResult run_adaptive(const dataset::Catalog& catalog,
                                     const pipeline::Pipeline& pipeline,
                                     const pipeline::CostModel& cost_model,
                                     const sim::ClusterConfig& planned, Seconds gpu_batch_time,
                                     const RunOptions& options = {});

}  // namespace sophon::core::adapt
