#include "core/plan.h"

#include <utility>

#include "util/check.h"

namespace sophon::core {

OffloadPlan::OffloadPlan(std::size_t num_samples) : assignment_(num_samples, 0) {}

OffloadPlan OffloadPlan::uniform(std::size_t num_samples, std::uint8_t prefix_len) {
  OffloadPlan plan(num_samples);
  for (auto& p : plan.assignment_) p = prefix_len;
  return plan;
}

void OffloadPlan::set(std::size_t sample_index, std::uint8_t prefix_len) {
  SOPHON_CHECK(sample_index < assignment_.size());
  assignment_[sample_index] = prefix_len;
}

std::uint8_t OffloadPlan::prefix(std::size_t sample_index) const {
  SOPHON_CHECK(sample_index < assignment_.size());
  return assignment_[sample_index];
}

std::size_t OffloadPlan::offloaded_count() const {
  std::size_t n = 0;
  for (const auto p : assignment_)
    if (p > 0) ++n;
  return n;
}

void OffloadPlan::set_traffic_forecast(PlanTrafficForecast forecast) {
  forecast_ = std::move(forecast);
}

double OffloadPlan::offloaded_fraction() const {
  if (assignment_.empty()) return 0.0;
  return static_cast<double>(offloaded_count()) / static_cast<double>(assignment_.size());
}

}  // namespace sophon::core
