// Persistence of profiling artifacts.
//
// Stage-2 profiling rides along with the first training epoch; a 50-epoch
// job should not repeat it after a restart, and a plan decided for one
// cluster configuration is worth inspecting offline. These helpers give
// SampleProfiles and OffloadPlans a stable JSON representation plus
// file-level save/load.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/plan.h"
#include "util/json.h"

namespace sophon::core {

/// Versioned JSON encoding of a stage-2 profile set.
[[nodiscard]] Json profiles_to_json(const std::vector<SampleProfile>& profiles);

/// Inverse of profiles_to_json. nullopt on schema mismatch.
[[nodiscard]] std::optional<std::vector<SampleProfile>> profiles_from_json(const Json& json);

/// Versioned JSON encoding of an offload plan (run-length compressed — real
/// plans are long runs of equal prefixes once sorted by sample id).
[[nodiscard]] Json plan_to_json(const OffloadPlan& plan);

[[nodiscard]] std::optional<OffloadPlan> plan_from_json(const Json& json);

/// Whole-file helpers. Save overwrites; load returns nullopt on I/O or
/// parse/schema failure.
bool save_json_file(const Json& json, const std::string& path);
[[nodiscard]] std::optional<Json> load_json_file(const std::string& path);

}  // namespace sophon::core
