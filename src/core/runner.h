// End-to-end orchestration: plan with a policy, then simulate training —
// the loop every evaluation bench and example drives.
#pragma once

#include <vector>

#include "core/policy.h"
#include "model/gpu_model.h"
#include "sim/trainer.h"

namespace sophon::core {

struct RunConfig {
  sim::ClusterConfig cluster;
  model::NetKind net = model::NetKind::kAlexNet;
  model::GpuKind gpu = model::GpuKind::kRtx6000;
  /// Data-parallel replicas: N GPUs consume batches N times faster, which
  /// is how the paper's intro argues the remote-I/O bottleneck worsens as
  /// accelerators multiply.
  int gpu_count = 1;
  std::size_t epochs = 1;  // epochs to simulate (plans are made once)
  std::uint64_t seed = 42;
};

struct PolicyRunResult {
  PolicyKind kind{};
  std::string name;
  PolicyDecision decision;
  sim::EpochStats stats;  // averaged over RunConfig::epochs
};

/// Plan with `policy`, then simulate `config.epochs` training epochs.
[[nodiscard]] PolicyRunResult run_policy(const Policy& policy, const dataset::Catalog& catalog,
                                         const pipeline::Pipeline& pipeline,
                                         const pipeline::CostModel& cost_model,
                                         const RunConfig& config);

/// Run all five policies under the same configuration (Fig 3 / Fig 4 rows).
[[nodiscard]] std::vector<PolicyRunResult> run_all_policies(const dataset::Catalog& catalog,
                                                            const pipeline::Pipeline& pipeline,
                                                            const pipeline::CostModel& cost_model,
                                                            const RunConfig& config);

}  // namespace sophon::core
