#include "core/metrics.h"

#include <algorithm>

#include "util/check.h"

namespace sophon::core {

std::string_view bottleneck_name(Bottleneck b) {
  switch (b) {
    case Bottleneck::kGpu:
      return "GPU";
    case Bottleneck::kIo:
      return "IO";
    case Bottleneck::kCpu:
      return "CPU";
  }
  return "Unknown";
}

Bottleneck ThroughputProfile::bottleneck() const {
  SOPHON_CHECK(gpu_samples_per_sec > 0.0 && io_samples_per_sec > 0.0 &&
               cpu_samples_per_sec > 0.0);
  // Ties break toward the GPU (no offloading) — a tie means offloading has
  // no headroom to exploit anyway.
  if (gpu_samples_per_sec <= io_samples_per_sec && gpu_samples_per_sec <= cpu_samples_per_sec)
    return Bottleneck::kGpu;
  if (io_samples_per_sec <= cpu_samples_per_sec) return Bottleneck::kIo;
  return Bottleneck::kCpu;
}

Seconds EpochCostVector::predominant() const {
  return std::max({t_g, t_cc, t_cs, t_net});
}

bool EpochCostVector::net_predominant() const {
  return t_net > t_g && t_net > t_cc && t_net > t_cs;
}

Bottleneck EpochCostVector::bottleneck() const {
  const Seconds cpu = std::max(t_cc, t_cs);
  if (t_g >= t_net && t_g >= cpu) return Bottleneck::kGpu;
  if (t_net >= cpu) return Bottleneck::kIo;
  return Bottleneck::kCpu;
}

}  // namespace sophon::core
