// The "preprocess once, store, reuse" strategy the paper rejects (§3.3).
//
// One could preprocess every sample to its minimum-size stage a single time,
// store the result near storage, and serve that artifact every epoch:
// traffic matches SOPHON's best case with no recurring storage CPU. The
// catch is accuracy: the random augmentations are drawn once, so every epoch
// sees the same crop/flip. This module evaluates the strategy so the
// trade-off can be quantified — traffic/time on one side, augmentation
// diversity (distinct augmented variants per sample over a training run) on
// the other.
#pragma once

#include <cstdint>

#include "dataset/catalog.h"
#include "pipeline/cost_model.h"
#include "pipeline/pipeline.h"
#include "sim/trainer.h"

namespace sophon::core {

struct ReuseEvaluation {
  /// Epoch 0: raw reads + one-time near-storage preprocessing, stored
  /// artifacts shipped.
  sim::EpochStats first_epoch;
  /// Every later epoch: stored artifacts shipped, suffix finished locally,
  /// zero storage CPU.
  sim::EpochStats steady_epoch;
  /// Extra at-rest footprint of the stored artifacts on the storage nodes.
  Bytes stored_footprint;
  /// Distinct augmented variants each sample contributes across `epochs`
  /// epochs: `epochs` for online preprocessing, 1 for reuse.
  double variants_per_sample = 0.0;
};

/// Evaluate preprocess-once over `epochs` epochs. Artifacts are stored at
/// each sample's min-size stage (falling back to stage 2 for samples whose
/// minimum is the raw form — storing raw would just be a cache).
[[nodiscard]] ReuseEvaluation evaluate_preprocess_once(const dataset::Catalog& catalog,
                                                       const pipeline::Pipeline& pipeline,
                                                       const pipeline::CostModel& cost_model,
                                                       const sim::ClusterConfig& cluster,
                                                       Seconds gpu_batch_time,
                                                       std::size_t epochs, std::uint64_t seed);

/// Measure augmentation diversity concretely: run the pipeline's random
/// stages over `epochs` epochs for one sample and count distinct outputs.
/// With `reuse` the stage-k artifact is produced once (epoch 0's streams)
/// and only the deterministic suffix re-runs, so the count collapses to 1.
[[nodiscard]] std::size_t count_distinct_variants(const pipeline::Pipeline& pipeline,
                                                  const pipeline::SampleData& raw_sample,
                                                  std::size_t epochs, std::uint64_t seed,
                                                  std::uint64_t sample_id, bool reuse);

}  // namespace sophon::core
