// SOPHON's decision engine (§3.2).
//
// Starting from the no-offloading baseline — where T_Net dominates because
// stage 1 established the workload is I/O-bound — greedily offload the
// highest-efficiency samples, trading network time for storage CPU time,
// until the network stops being the predominant cost or no beneficial
// samples remain.
//
// The ordering and stop-rule knobs exist for the ablation benches; the
// defaults are exactly the paper's algorithm.
#pragma once

#include <cstdint>
#include <vector>

#include "core/metrics.h"
#include "core/plan.h"
#include "sim/cluster.h"
#include "storage/sharding.h"

namespace sophon::core {

/// In which order candidate samples are considered.
enum class CandidateOrder {
  kByEfficiency,  // paper: descending size-reduction per CPU-second
  kByReduction,   // ablation: descending absolute size reduction
  kRandom,        // ablation: random order
};

/// When the greedy loop stops.
enum class StopRule {
  kNetPredominant,   // paper: stop once T_Net is no longer the largest term
  kExactMinimize,    // ablation: stop when the next offload would not lower
                     // the predicted epoch time
  kExhaustBenefits,  // ablation: offload every beneficial sample
};

struct DecisionOptions {
  CandidateOrder order = CandidateOrder::kByEfficiency;
  StopRule stop_rule = StopRule::kNetPredominant;
  std::uint64_t random_seed = 0;  // used by CandidateOrder::kRandom
};

struct DecisionResult {
  OffloadPlan plan;
  EpochCostVector baseline;  // cost vector before any offloading
  EpochCostVector final_cost;
  std::size_t beneficial_candidates = 0;  // samples with positive efficiency
  std::size_t offloaded = 0;
};

/// Run the decision engine over stage-2 profiles. `gpu_epoch_time` is T_G
/// for one epoch (from the stage-1 GPU throughput). If the cluster has no
/// storage cores, the result is the no-offload plan.
[[nodiscard]] DecisionResult decide_offloading(const std::vector<SampleProfile>& profiles,
                                               const sim::ClusterConfig& cluster,
                                               Seconds gpu_epoch_time,
                                               const DecisionOptions& options = {});

/// The cost vector of an arbitrary plan over the same profiles — used by
/// coarse planners (FastFlow) and the ablations to evaluate candidate plans
/// without running the simulator.
[[nodiscard]] EpochCostVector evaluate_plan(const std::vector<SampleProfile>& profiles,
                                            const OffloadPlan& plan,
                                            const sim::ClusterConfig& cluster,
                                            Seconds gpu_epoch_time);

/// The plan's predicted one-epoch link traffic against the all-raw
/// baseline, from the stage-2 profiles' exact wire sizes. Every decide_*
/// variant attaches this to its plan; callers with hand-built plans can
/// compute it directly.
[[nodiscard]] PlanTrafficForecast forecast_plan_traffic(
    const std::vector<SampleProfile>& profiles, const OffloadPlan& plan);

/// Decision result against a sharded storage cluster: T_CS is governed by
/// the *slowest node* (each node only preprocesses the samples it owns), so
/// the per-node budget vector matters, not just the cluster total.
struct ShardedDecisionResult {
  OffloadPlan plan;
  EpochCostVector baseline;
  EpochCostVector final_cost;  // t_cs = busiest node's CPU time
  std::vector<Seconds> node_cpu;  // offloaded single-core seconds per node
  std::size_t beneficial_candidates = 0;
  std::size_t offloaded = 0;
};

/// Sharded variant of the greedy: candidates are still taken in efficiency
/// order, but a candidate whose owning node is already saturated (adding it
/// would raise the predicted epoch time) is skipped rather than ending the
/// loop, so spare capacity on cold nodes keeps being used.
/// `cluster.storage_cores` is the per-node core budget.
[[nodiscard]] ShardedDecisionResult decide_offloading_sharded(
    const std::vector<SampleProfile>& profiles, const storage::ShardMap& shards,
    const sim::ClusterConfig& cluster, Seconds gpu_epoch_time);

/// Result of replica-aware planning: in addition to the plan, the node each
/// offloaded sample's prefix was routed to (its least-loaded replica at
/// selection time), expressed as a ShardMap so the sharded simulator can
/// consume it directly.
struct ReplicatedDecisionResult {
  OffloadPlan plan;
  storage::ShardMap execution_nodes;  // where each sample's prefix runs
  EpochCostVector baseline;
  EpochCostVector final_cost;
  std::vector<Seconds> node_cpu;
  std::size_t beneficial_candidates = 0;
  std::size_t offloaded = 0;
};

/// Replica-aware greedy: each candidate may run its prefix on any of its
/// replica holders; the engine routes it to the least-loaded one, which
/// largely neutralises placement skew as replication grows.
[[nodiscard]] ReplicatedDecisionResult decide_offloading_replicated(
    const std::vector<SampleProfile>& profiles, const storage::ReplicaMap& replicas,
    const sim::ClusterConfig& cluster, Seconds gpu_epoch_time);

}  // namespace sophon::core
