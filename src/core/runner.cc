#include "core/runner.h"

#include "util/check.h"

namespace sophon::core {

PolicyRunResult run_policy(const Policy& policy, const dataset::Catalog& catalog,
                           const pipeline::Pipeline& pipeline,
                           const pipeline::CostModel& cost_model, const RunConfig& config) {
  SOPHON_CHECK(config.epochs >= 1);
  SOPHON_CHECK(config.gpu_count >= 1);
  const auto gpu_model = model::GpuModel::lookup(config.net, config.gpu);
  const Seconds batch_time =
      gpu_model.batch_time(config.cluster.batch_size) / static_cast<double>(config.gpu_count);

  PlanContext ctx;
  ctx.catalog = &catalog;
  ctx.pipeline = &pipeline;
  ctx.cost_model = &cost_model;
  ctx.cluster = config.cluster;
  ctx.gpu_batch_time = batch_time;
  ctx.seed = config.seed;

  PolicyRunResult result;
  result.kind = policy.kind();
  result.name = std::string(policy.name());
  result.decision = policy.plan(ctx);
  result.stats =
      sim::simulate_epochs(catalog, pipeline, cost_model, config.cluster, batch_time,
                           result.decision.plan.assignment(), config.seed, config.epochs);
  return result;
}

std::vector<PolicyRunResult> run_all_policies(const dataset::Catalog& catalog,
                                              const pipeline::Pipeline& pipeline,
                                              const pipeline::CostModel& cost_model,
                                              const RunConfig& config) {
  std::vector<PolicyRunResult> results;
  for (const auto& policy : make_all_policies()) {
    results.push_back(run_policy(*policy, catalog, pipeline, cost_model, config));
  }
  return results;
}

}  // namespace sophon::core
