#include "core/compression.h"

#include <algorithm>
#include <cmath>

#include "codec/sjpg.h"
#include "net/wire.h"
#include "util/check.h"

namespace sophon::core {

Bytes CompressionModel::estimate_compressed(std::int64_t pixels, double texture) const {
  SOPHON_CHECK(pixels > 0);
  SOPHON_CHECK(texture >= 0.0 && texture <= 1.0);
  const double step = codec::sjpg_quant_step(quality);
  // Coarser quantisation removes residual entropy roughly with sqrt(step).
  const double bpp = std::clamp(
      (base_bpp + texture_bpp * std::pow(texture, texture_exponent)) / std::sqrt(step), 0.25,
      12.0);
  return Bytes(static_cast<std::int64_t>(static_cast<double>(pixels) * bpp / 8.0));
}

Seconds CompressionModel::encode_cost(std::int64_t pixels) const {
  return Seconds::nanos(encode_ns_per_pixel * static_cast<double>(pixels));
}

Seconds CompressionModel::decode_cost(std::int64_t pixels) const {
  return Seconds::nanos(decode_ns_per_pixel * static_cast<double>(pixels));
}

namespace {

/// Compression only applies to samples shipped as uncompressed images
/// (offload prefix lands between Decode and ToTensor).
bool payload_is_image(const pipeline::Pipeline& pipeline, const pipeline::SampleShape& raw,
                      std::size_t prefix) {
  if (prefix == 0) return false;
  return pipeline.shape_at(raw, prefix).repr == pipeline::Repr::kImage;
}

}  // namespace

CompressedPlan decide_compression(const std::vector<SampleProfile>& profiles,
                                  const dataset::Catalog& catalog,
                                  const pipeline::Pipeline& pipeline, const OffloadPlan& base,
                                  EpochCostVector base_cost, const sim::ClusterConfig& cluster,
                                  const CompressionModel& model) {
  SOPHON_CHECK(profiles.size() == catalog.size());
  SOPHON_CHECK(base.size() == catalog.size());

  CompressedPlan plan;
  plan.base = base;
  plan.compress.assign(catalog.size(), false);
  plan.final_cost = base_cost;

  struct Candidate {
    std::uint32_t index;
    Bytes saving;
    Seconds storage_cpu;
    Seconds compute_cpu;
    double efficiency;
  };
  std::vector<Candidate> candidates;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const auto& meta = catalog.sample(i);
    const std::size_t prefix = base.prefix(i);
    if (!payload_is_image(pipeline, meta.raw, prefix)) continue;
    const auto shape = pipeline.shape_at(meta.raw, prefix);
    const Bytes plain = shape.byte_size();
    const Bytes compressed = model.estimate_compressed(shape.pixel_count(), meta.texture);
    if (compressed >= plain) continue;
    Candidate c;
    c.index = static_cast<std::uint32_t>(i);
    c.saving = plain - compressed;
    c.storage_cpu = model.encode_cost(shape.pixel_count());
    c.compute_cpu = model.decode_cost(shape.pixel_count());
    c.efficiency = c.saving.as_double() / c.storage_cpu.value();
    candidates.push_back(c);
  }
  std::sort(candidates.begin(), candidates.end(), [](const Candidate& a, const Candidate& b) {
    if (a.efficiency != b.efficiency) return a.efficiency > b.efficiency;
    return a.index < b.index;
  });

  const double capacity = static_cast<double>(cluster.storage_cores) * cluster.storage_core_speed;
  const double bytes_per_sec = cluster.bandwidth.bytes_per_sec();
  EpochCostVector cost = base_cost;
  for (const auto& c : candidates) {
    if (!cost.net_predominant()) break;
    if (capacity <= 0.0) break;
    EpochCostVector next = cost;
    next.t_net -= Seconds(c.saving.as_double() / bytes_per_sec);
    next.t_cs += c.storage_cpu / capacity;
    next.t_cc += c.compute_cpu / static_cast<double>(cluster.compute_cores);
    if (next.predicted_epoch_time() >= cost.predicted_epoch_time()) break;
    cost = next;
    plan.compress[c.index] = true;
    ++plan.compressed_count;
  }
  plan.final_cost = cost;
  return plan;
}

std::function<sim::SampleFlow(std::size_t)> make_compressed_flows(
    const CompressedPlan& plan, const dataset::Catalog& catalog,
    const pipeline::Pipeline& pipeline, const pipeline::CostModel& cost_model,
    const CompressionModel& model) {
  return [&plan, &catalog, &pipeline, &cost_model, model](std::size_t idx) {
    const auto& meta = catalog.sample(idx);
    const std::size_t prefix = plan.base.prefix(idx);
    sim::SampleFlow f;
    f.storage_cpu =
        prefix > 0 ? pipeline.prefix_cost(meta.raw, prefix, cost_model) : Seconds(0.0);
    const auto shape = pipeline.shape_at(meta.raw, prefix);
    f.wire = net::wire_size(shape);
    f.compute_cpu = pipeline.suffix_cost(meta.raw, prefix, cost_model);
    if (plan.compress[idx]) {
      const Bytes compressed = model.estimate_compressed(shape.pixel_count(), meta.texture);
      f.wire = compressed + Bytes(net::kFrameOverheadBytes);
      f.storage_cpu += model.encode_cost(shape.pixel_count());
      f.compute_cpu += model.decode_cost(shape.pixel_count());
    }
    return f;
  };
}

}  // namespace sophon::core
