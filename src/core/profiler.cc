#include "core/profiler.h"

#include <algorithm>

#include "dataset/sampler.h"
#include "net/wire.h"
#include "util/check.h"

namespace sophon::core {

ThroughputProfile profile_stage1(const dataset::Catalog& catalog,
                                 const pipeline::Pipeline& pipeline,
                                 const pipeline::CostModel& cost_model,
                                 const sim::ClusterConfig& cluster, Seconds gpu_batch_time,
                                 const Stage1Options& options) {
  SOPHON_CHECK(!catalog.empty());
  SOPHON_CHECK(options.num_batches >= 1);
  SOPHON_CHECK(gpu_batch_time.value() > 0.0);

  const std::size_t probe_samples =
      std::min(catalog.size(), options.num_batches * cluster.batch_size);
  const dataset::EpochOrder order(catalog.size(), options.seed, /*epoch=*/0);

  // Setting 1: model training on synthetic data — pure GPU throughput.
  const double gpu_time = gpu_batch_time.value() *
                          static_cast<double>((probe_samples + cluster.batch_size - 1) /
                                              cluster.batch_size);
  const double gpu_sps = static_cast<double>(probe_samples) / gpu_time;

  // Setting 2: raw fetches only — pure I/O throughput over the link.
  Bytes io_bytes;
  for (std::size_t pos = 0; pos < probe_samples; ++pos) {
    const auto& meta = catalog.sample(order.at(pos));
    io_bytes += net::wire_size(meta.raw);
  }
  const double io_time = io_bytes.as_double() / cluster.bandwidth.bytes_per_sec();
  const double io_sps = static_cast<double>(probe_samples) / io_time;

  // Setting 3: full local preprocessing of the cached probe data.
  Seconds cpu_total;
  for (std::size_t pos = 0; pos < probe_samples; ++pos) {
    const auto& meta = catalog.sample(order.at(pos));
    cpu_total += pipeline.suffix_cost(meta.raw, 0, cost_model);
  }
  const double cpu_time = cpu_total.value() / static_cast<double>(cluster.compute_cores);
  const double cpu_sps = static_cast<double>(probe_samples) / cpu_time;

  ThroughputProfile profile;
  profile.gpu_samples_per_sec = gpu_sps;
  profile.io_samples_per_sec = io_sps;
  profile.cpu_samples_per_sec = cpu_sps;
  return profile;
}

std::vector<SampleProfile> profile_stage2(const dataset::Catalog& catalog,
                                          const pipeline::Pipeline& pipeline,
                                          const pipeline::CostModel& cost_model) {
  SOPHON_CHECK(!catalog.empty());
  std::vector<SampleProfile> profiles;
  profiles.reserve(catalog.size());

  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const auto& meta = catalog.sample(i);
    const auto trace = pipeline.analytic_trace(meta.raw, cost_model);

    SampleProfile p;
    p.sample_index = static_cast<std::uint32_t>(i);
    p.stage_sizes.reserve(trace.size());
    p.op_costs.reserve(trace.size() - 1);
    // Wire sizes (payload + framing) so the decision engine's traffic math
    // matches what the link will actually carry.
    for (std::size_t s = 0; s < trace.size(); ++s) {
      p.stage_sizes.push_back(trace[s].size + Bytes(net::kFrameOverheadBytes));
      if (s > 0) p.op_costs.push_back(trace[s].op_cost);
    }

    // Earliest minimal stage and the derived offload quantities.
    std::size_t best = 0;
    for (std::size_t s = 1; s < p.stage_sizes.size(); ++s) {
      if (p.stage_sizes[s] < p.stage_sizes[best]) best = s;
    }
    p.min_stage = static_cast<std::uint32_t>(best);
    p.reduction = p.stage_sizes[0] - p.stage_sizes[best];
    Seconds prefix;
    for (std::size_t s = 0; s < best; ++s) prefix += p.op_costs[s];
    p.prefix_time = prefix;
    profiles.push_back(std::move(p));
  }
  return profiles;
}

}  // namespace sophon::core
