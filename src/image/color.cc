#include "image/color.h"

#include <algorithm>

#include "util/check.h"

namespace sophon::image {

namespace {
std::uint8_t clamp_u8(int v) {
  return static_cast<std::uint8_t>(std::clamp(v, 0, 255));
}
}  // namespace

Ycbcr rgb_to_ycbcr(std::uint8_t r, std::uint8_t g, std::uint8_t b) {
  // Fixed-point BT.601: coefficients scaled by 2^16.
  const int ri = r;
  const int gi = g;
  const int bi = b;
  const int y = (19595 * ri + 38470 * gi + 7471 * bi + 32768) >> 16;
  const int cb = ((-11059 * ri - 21709 * gi + 32768 * bi + 32768) >> 16) + 128;
  const int cr = ((32768 * ri - 27439 * gi - 5329 * bi + 32768) >> 16) + 128;
  return {clamp_u8(y), clamp_u8(cb), clamp_u8(cr)};
}

Rgb ycbcr_to_rgb(std::uint8_t y, std::uint8_t cb, std::uint8_t cr) {
  const int yi = y;
  const int cbi = cb - 128;
  const int cri = cr - 128;
  const int r = yi + ((91881 * cri + 32768) >> 16);
  const int g = yi - ((22554 * cbi + 46802 * cri + 32768) >> 16);
  const int b = yi + ((116130 * cbi + 32768) >> 16);
  return {clamp_u8(r), clamp_u8(g), clamp_u8(b)};
}

YcbcrPlanes split_ycbcr_420(const Image& rgb) {
  SOPHON_CHECK(rgb.channels() == 3);
  const int w = rgb.width();
  const int h = rgb.height();
  const int cw = (w + 1) / 2;
  const int ch = (h + 1) / 2;
  YcbcrPlanes planes{Plane(w, h), Plane(cw, ch), Plane(cw, ch)};

  // Full-resolution pass for luma; accumulate chroma for 2x2 boxes.
  std::vector<int> cb_acc(static_cast<std::size_t>(cw) * ch, 0);
  std::vector<int> cr_acc(static_cast<std::size_t>(cw) * ch, 0);
  std::vector<int> n_acc(static_cast<std::size_t>(cw) * ch, 0);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const auto ycc = rgb_to_ycbcr(rgb.at(x, y, 0), rgb.at(x, y, 1), rgb.at(x, y, 2));
      planes.y.set(x, y, ycc.y);
      const auto idx = static_cast<std::size_t>(y / 2) * cw + static_cast<std::size_t>(x / 2);
      cb_acc[idx] += ycc.cb;
      cr_acc[idx] += ycc.cr;
      ++n_acc[idx];
    }
  }
  for (int cy = 0; cy < ch; ++cy) {
    for (int cx = 0; cx < cw; ++cx) {
      const auto idx = static_cast<std::size_t>(cy) * cw + static_cast<std::size_t>(cx);
      planes.cb.set(cx, cy, static_cast<std::uint8_t>((cb_acc[idx] + n_acc[idx] / 2) / n_acc[idx]));
      planes.cr.set(cx, cy, static_cast<std::uint8_t>((cr_acc[idx] + n_acc[idx] / 2) / n_acc[idx]));
    }
  }
  return planes;
}

Image merge_ycbcr_420(const Plane& y, const Plane& cb, const Plane& cr, int width, int height) {
  SOPHON_CHECK(y.width() == width && y.height() == height);
  SOPHON_CHECK(cb.width() == (width + 1) / 2 && cb.height() == (height + 1) / 2);
  SOPHON_CHECK(cr.width() == cb.width() && cr.height() == cb.height());
  Image out(width, height, 3);
  for (int py = 0; py < height; ++py) {
    for (int px = 0; px < width; ++px) {
      const auto rgb = ycbcr_to_rgb(y.at(px, py), cb.at(px / 2, py / 2), cr.at(px / 2, py / 2));
      out.set(px, py, 0, rgb.r);
      out.set(px, py, 1, rgb.g);
      out.set(px, py, 2, rgb.b);
    }
  }
  return out;
}

}  // namespace sophon::image
