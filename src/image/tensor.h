// Float tensor in CHW layout — the representation a sample takes after the
// ToTensor stage. Each element is a 4-byte float, which is why ToTensor
// quadruples a sample's size (the paper's Finding #2).
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.h"

namespace sophon::image {

/// Dense float32 tensor, channel-major (CHW) like torchvision's ToTensor
/// output. Invariant: data().size() == channels*height*width.
class Tensor {
 public:
  Tensor() = default;

  /// Zero-filled tensor; all dimensions must be positive.
  Tensor(int channels, int height, int width);

  [[nodiscard]] int channels() const { return channels_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] std::int64_t numel() const {
    return static_cast<std::int64_t>(channels_) * height_ * width_;
  }

  /// Wire cost of this representation: 4 bytes per element.
  [[nodiscard]] Bytes byte_size() const {
    return Bytes(static_cast<std::int64_t>(values_.size() * sizeof(float)));
  }

  [[nodiscard]] float at(int c, int y, int x) const;
  void set(int c, int y, int x, float value);

  [[nodiscard]] const std::vector<float>& data() const { return values_; }
  [[nodiscard]] std::vector<float>& data() { return values_; }

  friend bool operator==(const Tensor& a, const Tensor& b) = default;

 private:
  int channels_ = 0;
  int height_ = 0;
  int width_ = 0;
  std::vector<float> values_;
};

}  // namespace sophon::image
