#include "image/image.h"

#include "util/check.h"

namespace sophon::image {

Image::Image(int width, int height, int channels)
    : width_(width),
      height_(height),
      channels_(channels),
      pixels_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height) *
              static_cast<std::size_t>(channels)) {
  SOPHON_CHECK(width > 0 && height > 0);
  SOPHON_CHECK(channels == 1 || channels == 3);
}

Image::Image(int width, int height, int channels, std::vector<std::uint8_t> pixels)
    : width_(width), height_(height), channels_(channels), pixels_(std::move(pixels)) {
  SOPHON_CHECK(width > 0 && height > 0);
  SOPHON_CHECK(channels == 1 || channels == 3);
  SOPHON_CHECK_MSG(pixels_.size() == static_cast<std::size_t>(width) *
                                         static_cast<std::size_t>(height) *
                                         static_cast<std::size_t>(channels),
                   "pixel buffer size must match dimensions");
}

std::uint8_t Image::at(int x, int y, int c) const {
  SOPHON_CHECK(x >= 0 && x < width_ && y >= 0 && y < height_ && c >= 0 && c < channels_);
  return pixels_[(static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                  static_cast<std::size_t>(x)) *
                     static_cast<std::size_t>(channels_) +
                 static_cast<std::size_t>(c)];
}

void Image::set(int x, int y, int c, std::uint8_t value) {
  SOPHON_CHECK(x >= 0 && x < width_ && y >= 0 && y < height_ && c >= 0 && c < channels_);
  pixels_[(static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x)) *
              static_cast<std::size_t>(channels_) +
          static_cast<std::size_t>(c)] = value;
}

Plane::Plane(int width, int height)
    : width_(width),
      height_(height),
      values_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height)) {
  SOPHON_CHECK(width > 0 && height > 0);
}

std::uint8_t Plane::at(int x, int y) const {
  SOPHON_CHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
  return values_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
}

void Plane::set(int x, int y, std::uint8_t value) {
  SOPHON_CHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
  values_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
          static_cast<std::size_t>(x)] = value;
}

}  // namespace sophon::image
