// Color-space conversion and plane resampling helpers shared by the SJPG
// codec (RGB↔YCbCr with 4:2:0 chroma subsampling, like baseline JPEG).
#pragma once

#include <cstdint>

#include "image/image.h"

namespace sophon::image {

/// Integer BT.601 RGB→YCbCr (full range, offset-binary chroma).
struct Ycbcr {
  std::uint8_t y;
  std::uint8_t cb;
  std::uint8_t cr;
};

[[nodiscard]] Ycbcr rgb_to_ycbcr(std::uint8_t r, std::uint8_t g, std::uint8_t b);

struct Rgb {
  std::uint8_t r;
  std::uint8_t g;
  std::uint8_t b;
};

[[nodiscard]] Rgb ycbcr_to_rgb(std::uint8_t y, std::uint8_t cb, std::uint8_t cr);

/// Split an RGB image into full-resolution Y plus 2x2-box-subsampled Cb/Cr
/// planes (ceil division at odd edges).
struct YcbcrPlanes {
  Plane y;
  Plane cb;
  Plane cr;
};

[[nodiscard]] YcbcrPlanes split_ycbcr_420(const Image& rgb);

/// Reassemble an RGB image from 4:2:0 planes (nearest-neighbour chroma
/// upsampling). `width`/`height` give the full-resolution size.
[[nodiscard]] Image merge_ycbcr_420(const Plane& y, const Plane& cb, const Plane& cr,
                                    int width, int height);

}  // namespace sophon::image
