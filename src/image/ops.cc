#include "image/ops.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace sophon::image {

Image crop(const Image& src, const CropRect& rect) {
  SOPHON_CHECK(rect.width > 0 && rect.height > 0);
  SOPHON_CHECK(rect.x >= 0 && rect.y >= 0);
  SOPHON_CHECK(rect.x + rect.width <= src.width());
  SOPHON_CHECK(rect.y + rect.height <= src.height());
  Image out(rect.width, rect.height, src.channels());
  const int ch = src.channels();
  for (int y = 0; y < rect.height; ++y) {
    for (int x = 0; x < rect.width; ++x) {
      for (int c = 0; c < ch; ++c) {
        out.set(x, y, c, src.at(rect.x + x, rect.y + y, c));
      }
    }
  }
  return out;
}

Image resize_bilinear(const Image& src, int out_width, int out_height) {
  SOPHON_CHECK(out_width > 0 && out_height > 0);
  SOPHON_CHECK(!src.empty());
  Image out(out_width, out_height, src.channels());
  const double sx = static_cast<double>(src.width()) / out_width;
  const double sy = static_cast<double>(src.height()) / out_height;
  const int ch = src.channels();
  for (int oy = 0; oy < out_height; ++oy) {
    // Half-pixel-center source coordinate.
    const double fy = (oy + 0.5) * sy - 0.5;
    const int y0 = std::clamp(static_cast<int>(std::floor(fy)), 0, src.height() - 1);
    const int y1 = std::min(y0 + 1, src.height() - 1);
    const double wy = std::clamp(fy - y0, 0.0, 1.0);
    for (int ox = 0; ox < out_width; ++ox) {
      const double fx = (ox + 0.5) * sx - 0.5;
      const int x0 = std::clamp(static_cast<int>(std::floor(fx)), 0, src.width() - 1);
      const int x1 = std::min(x0 + 1, src.width() - 1);
      const double wx = std::clamp(fx - x0, 0.0, 1.0);
      for (int c = 0; c < ch; ++c) {
        const double top = src.at(x0, y0, c) * (1.0 - wx) + src.at(x1, y0, c) * wx;
        const double bot = src.at(x0, y1, c) * (1.0 - wx) + src.at(x1, y1, c) * wx;
        const double v = top * (1.0 - wy) + bot * wy;
        out.set(ox, oy, c, static_cast<std::uint8_t>(std::clamp(v + 0.5, 0.0, 255.0)));
      }
    }
  }
  return out;
}

Image horizontal_flip(const Image& src) {
  SOPHON_CHECK(!src.empty());
  Image out(src.width(), src.height(), src.channels());
  const int ch = src.channels();
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      for (int c = 0; c < ch; ++c) {
        out.set(src.width() - 1 - x, y, c, src.at(x, y, c));
      }
    }
  }
  return out;
}

CropRect sample_resized_crop_rect(int src_width, int src_height, Rng& rng, double scale_lo,
                                  double scale_hi) {
  SOPHON_CHECK(src_width > 0 && src_height > 0);
  SOPHON_CHECK(scale_lo > 0.0 && scale_lo <= scale_hi && scale_hi <= 1.0);
  const double area = static_cast<double>(src_width) * src_height;
  constexpr double kLogRatioLo = -0.28768207245178085;  // log(3/4)
  constexpr double kLogRatioHi = 0.28768207245178085;   // log(4/3)
  for (int attempt = 0; attempt < 10; ++attempt) {
    const double target_area = area * rng.uniform(scale_lo, scale_hi);
    const double aspect = std::exp(rng.uniform(kLogRatioLo, kLogRatioHi));
    const int w = static_cast<int>(std::lround(std::sqrt(target_area * aspect)));
    const int h = static_cast<int>(std::lround(std::sqrt(target_area / aspect)));
    if (w > 0 && h > 0 && w <= src_width && h <= src_height) {
      const int x = static_cast<int>(rng.uniform_int(0, src_width - w));
      const int y = static_cast<int>(rng.uniform_int(0, src_height - h));
      return {x, y, w, h};
    }
  }
  // Fallback: central crop at the clamped aspect ratio (torchvision's rule).
  const double in_ratio = static_cast<double>(src_width) / src_height;
  int w;
  int h;
  if (in_ratio < 3.0 / 4.0) {
    w = src_width;
    h = static_cast<int>(std::lround(w / (3.0 / 4.0)));
  } else if (in_ratio > 4.0 / 3.0) {
    h = src_height;
    w = static_cast<int>(std::lround(h * (4.0 / 3.0)));
  } else {
    w = src_width;
    h = src_height;
  }
  w = std::min(w, src_width);
  h = std::min(h, src_height);
  return {(src_width - w) / 2, (src_height - h) / 2, w, h};
}

Image resized_crop(const Image& src, const CropRect& rect, int size) {
  return resize_bilinear(crop(src, rect), size, size);
}

Tensor to_tensor(const Image& src) {
  SOPHON_CHECK(!src.empty());
  Tensor out(src.channels(), src.height(), src.width());
  constexpr float kInv255 = 1.0f / 255.0f;
  for (int c = 0; c < src.channels(); ++c) {
    for (int y = 0; y < src.height(); ++y) {
      for (int x = 0; x < src.width(); ++x) {
        out.set(c, y, x, static_cast<float>(src.at(x, y, c)) * kInv255);
      }
    }
  }
  return out;
}

void normalize(Tensor& t, const std::array<float, 3>& mean, const std::array<float, 3>& stddev) {
  SOPHON_CHECK(t.channels() <= 3);
  for (int c = 0; c < t.channels(); ++c) {
    SOPHON_CHECK_MSG(stddev[static_cast<std::size_t>(c)] > 0.0f, "stddev must be positive");
    const float m = mean[static_cast<std::size_t>(c)];
    const float inv_s = 1.0f / stddev[static_cast<std::size_t>(c)];
    for (int y = 0; y < t.height(); ++y) {
      for (int x = 0; x < t.width(); ++x) {
        t.set(c, y, x, (t.at(c, y, x) - m) * inv_s);
      }
    }
  }
}

}  // namespace sophon::image
