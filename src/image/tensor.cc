#include "image/tensor.h"

#include "util/check.h"

namespace sophon::image {

Tensor::Tensor(int channels, int height, int width)
    : channels_(channels),
      height_(height),
      width_(width),
      values_(static_cast<std::size_t>(channels) * static_cast<std::size_t>(height) *
              static_cast<std::size_t>(width)) {
  SOPHON_CHECK(channels > 0 && height > 0 && width > 0);
}

float Tensor::at(int c, int y, int x) const {
  SOPHON_CHECK(c >= 0 && c < channels_ && y >= 0 && y < height_ && x >= 0 && x < width_);
  return values_[(static_cast<std::size_t>(c) * static_cast<std::size_t>(height_) +
                  static_cast<std::size_t>(y)) *
                     static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
}

void Tensor::set(int c, int y, int x, float value) {
  SOPHON_CHECK(c >= 0 && c < channels_ && y >= 0 && y < height_ && x >= 0 && x < width_);
  values_[(static_cast<std::size_t>(c) * static_cast<std::size_t>(height_) +
           static_cast<std::size_t>(y)) *
              static_cast<std::size_t>(width_) +
          static_cast<std::size_t>(x)] = value;
}

}  // namespace sophon::image
