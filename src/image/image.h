// In-memory raster image: interleaved uint8, HWC layout — the representation
// a sample takes after the Decode stage of the preprocessing pipeline.
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.h"

namespace sophon::image {

/// Interleaved uint8 image, height-major (HWC). Value type: cheap to move,
/// explicit to copy. Invariant: data().size() == width*height*channels.
class Image {
 public:
  Image() = default;

  /// Construct a zero-filled image. Dimensions must be positive and
  /// channels 1 or 3.
  Image(int width, int height, int channels);

  /// Construct taking ownership of pixel data (size must match).
  Image(int width, int height, int channels, std::vector<std::uint8_t> pixels);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] int channels() const { return channels_; }
  [[nodiscard]] bool empty() const { return pixels_.empty(); }
  [[nodiscard]] std::int64_t pixel_count() const {
    return static_cast<std::int64_t>(width_) * height_;
  }

  /// Size of the raw pixel payload — what this representation costs on the
  /// wire (1 byte per channel sample, as in the paper's analysis).
  [[nodiscard]] Bytes byte_size() const { return Bytes(static_cast<std::int64_t>(pixels_.size())); }

  [[nodiscard]] std::uint8_t at(int x, int y, int c) const;
  void set(int x, int y, int c, std::uint8_t value);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return pixels_; }
  [[nodiscard]] std::vector<std::uint8_t>& data() { return pixels_; }

  friend bool operator==(const Image& a, const Image& b) = default;

 private:
  int width_ = 0;
  int height_ = 0;
  int channels_ = 0;
  std::vector<std::uint8_t> pixels_;
};

/// A single-channel plane of arbitrary integral content, used by the codec
/// for luma/chroma working storage.
class Plane {
 public:
  Plane() = default;
  Plane(int width, int height);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }

  [[nodiscard]] std::uint8_t at(int x, int y) const;
  void set(int x, int y, std::uint8_t value);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return values_; }
  [[nodiscard]] std::vector<std::uint8_t>& data() { return values_; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> values_;
};

}  // namespace sophon::image
