// Pixel-level transform kernels backing the preprocessing pipeline ops.
// These are the real computations (crop, bilinear resize, flip, tensor
// conversion, normalisation) — the same semantics as torchvision's
// transforms, which the paper's workload uses.
#pragma once

#include <array>

#include "image/image.h"
#include "image/tensor.h"
#include "util/rng.h"

namespace sophon::image {

/// Axis-aligned crop rectangle in pixel coordinates.
struct CropRect {
  int x = 0;
  int y = 0;
  int width = 0;
  int height = 0;
};

/// Extract a sub-image. The rectangle must lie fully inside `src`.
[[nodiscard]] Image crop(const Image& src, const CropRect& rect);

/// Bilinear resize to (out_width, out_height) with half-pixel centers
/// (align_corners = false), matching PIL/torchvision behaviour closely.
[[nodiscard]] Image resize_bilinear(const Image& src, int out_width, int out_height);

/// Mirror the image around its vertical axis.
[[nodiscard]] Image horizontal_flip(const Image& src);

/// Sample the RandomResizedCrop geometry exactly as torchvision does:
/// area scale in [scale_lo, scale_hi] of the source, log-uniform aspect
/// ratio in [3/4, 4/3], ten attempts then a center-crop fallback.
[[nodiscard]] CropRect sample_resized_crop_rect(int src_width, int src_height, Rng& rng,
                                                double scale_lo = 0.08, double scale_hi = 1.0);

/// Crop `rect` then bilinear-resize to (size x size) — RandomResizedCrop's
/// deterministic core once the geometry is fixed.
[[nodiscard]] Image resized_crop(const Image& src, const CropRect& rect, int size);

/// uint8 HWC [0,255] → float32 CHW [0,1] (torchvision ToTensor).
[[nodiscard]] Tensor to_tensor(const Image& src);

/// Per-channel (x - mean) / std in place; `mean`/`stddev` indexed by channel.
/// Channels beyond 3 are not supported (the pipeline is RGB).
void normalize(Tensor& t, const std::array<float, 3>& mean, const std::array<float, 3>& stddev);

/// The ImageNet normalisation constants used by the paper's training script.
inline constexpr std::array<float, 3> kImagenetMean{0.485f, 0.456f, 0.406f};
inline constexpr std::array<float, 3> kImagenetStd{0.229f, 0.224f, 0.225f};

}  // namespace sophon::image
