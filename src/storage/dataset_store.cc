#include "storage/dataset_store.h"

#include "dataset/synth.h"
#include "util/check.h"

namespace sophon::storage {

DatasetStore::DatasetStore(const dataset::Catalog& catalog, std::uint64_t seed, int quality)
    : catalog_(&catalog), seed_(seed), quality_(quality) {
  SOPHON_CHECK(quality >= 1 && quality <= 100);
}

void DatasetStore::put(std::uint64_t sample_id, std::vector<std::uint8_t> blob) {
  SOPHON_CHECK(!blob.empty());
  const std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = blobs_.find(sample_id); it != blobs_.end()) {
    resident_ -= Bytes(static_cast<std::int64_t>(it->second.size()));
  }
  resident_ += Bytes(static_cast<std::int64_t>(blob.size()));
  blobs_.insert_or_assign(sample_id, std::move(blob));
}

const std::vector<std::uint8_t>* DatasetStore::get(std::uint64_t sample_id) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = blobs_.find(sample_id); it != blobs_.end()) return &it->second;
    if (sample_id >= catalog_->size()) return nullptr;
  }
  // Materialise outside the lock (rendering + encoding is the slow part);
  // if another thread won the race, keep its blob.
  auto blob = dataset::materialize_encoded(catalog_->sample(static_cast<std::size_t>(sample_id)),
                                           seed_, quality_);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = blobs_.emplace(sample_id, std::move(blob));
  if (inserted) resident_ += Bytes(static_cast<std::int64_t>(it->second.size()));
  return &it->second;
}

std::size_t DatasetStore::materialized_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return blobs_.size();
}

Bytes DatasetStore::resident_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return resident_;
}

}  // namespace sophon::storage
