#include "storage/router.h"

#include "util/check.h"

namespace sophon::storage {

RoutedFetchService::RoutedFetchService(std::vector<net::StorageService*> nodes,
                                       const ShardMap& shards)
    : nodes_(std::move(nodes)), shards_(shards), requests_(nodes_.size(), 0) {
  SOPHON_CHECK(!nodes_.empty());
  SOPHON_CHECK_MSG(static_cast<int>(nodes_.size()) == shards.num_nodes(),
                   "one service per shard-map node required");
  for (const auto* node : nodes_) SOPHON_CHECK(node != nullptr);
}

net::FetchResponse RoutedFetchService::fetch(const net::FetchRequest& request) {
  SOPHON_CHECK_MSG(request.sample_id < shards_.size(), "sample outside the shard map");
  const auto node = static_cast<std::size_t>(shards_.node_of(request.sample_id));
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++requests_[node];
  }
  return nodes_[node]->fetch(request);
}

std::vector<std::uint64_t> RoutedFetchService::per_node_requests() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return requests_;
}

}  // namespace sophon::storage
