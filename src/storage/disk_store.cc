#include "storage/disk_store.h"

#include <fstream>

#include "dataset/synth.h"
#include "util/check.h"
#include "util/json.h"

namespace sophon::storage {

namespace {
std::string blob_file_name(std::uint64_t sample_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx.sjpg", static_cast<unsigned long long>(sample_id));
  return buf;
}
}  // namespace

DiskStore::DiskStore(std::filesystem::path root, MetricsRegistry* metrics)
    : root_(std::move(root)), metrics_(metrics) {
  std::filesystem::create_directories(root_);
  load_manifest();
}

bool DiskStore::load_manifest() {
  std::ifstream in(manifest_path());
  if (!in) return false;
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  const auto json = Json::parse(text);
  if (!json || !json->is_object() || !json->has("entries")) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto& entries = json->at("entries");
  if (!entries.is_array()) return false;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries.at(i);
    if (!e.is_object() || !e.has("id") || !e.has("file") || !e.has("bytes")) continue;
    Entry entry;
    entry.file = e.at("file").as_string();
    entry.bytes = e.at("bytes").as_int();
    index_.emplace(static_cast<std::uint64_t>(e.at("id").as_int()), std::move(entry));
  }
  return true;
}

bool DiskStore::write_manifest_locked() const {
  Json root = Json::object();
  root.set("kind", "sophon.disk_store");
  root.set("version", 1);
  Json entries = Json::array();
  for (const auto& [id, entry] : index_) {
    Json e = Json::object();
    e.set("id", static_cast<std::int64_t>(id));
    e.set("file", entry.file);
    e.set("bytes", entry.bytes);
    entries.push_back(std::move(e));
  }
  root.set("entries", std::move(entries));
  // Write-then-rename so readers never observe a torn manifest.
  const auto tmp = manifest_path().string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << root.dump(2) << '\n';
    if (!out) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, manifest_path(), ec);
  return !ec;
}

bool DiskStore::put(std::uint64_t sample_id, const std::vector<std::uint8_t>& blob) {
  SOPHON_CHECK(!blob.empty());
  const auto file = blob_file_name(sample_id);
  {
    std::ofstream out(root_ / file, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
    if (!out) return false;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  index_[sample_id] = {file, static_cast<std::int64_t>(blob.size())};
  return write_manifest_locked();
}

std::optional<std::vector<std::uint8_t>> DiskStore::get(std::uint64_t sample_id) const {
  Entry entry;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(sample_id);
    if (it == index_.end()) return std::nullopt;
    entry = it->second;
  }
  const auto corrupt = [this]() -> std::optional<std::vector<std::uint8_t>> {
    if (metrics_ != nullptr) metrics_->counter("sophon_diskstore_corrupt").increment();
    return std::nullopt;
  };
  // The manifest is the authority on each blob's size: a file that shrank
  // (truncation) or grew (stray append/overwrite) behind the manifest's
  // back must surface as corruption, not as a silently short/long read.
  std::error_code ec;
  const auto on_disk = std::filesystem::file_size(root_ / entry.file, ec);
  if (ec) return std::nullopt;  // vanished: absent, not corrupt
  if (on_disk != static_cast<std::uintmax_t>(entry.bytes)) return corrupt();
  std::ifstream in(root_ / entry.file, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> blob(static_cast<std::size_t>(entry.bytes));
  in.read(reinterpret_cast<char*>(blob.data()), entry.bytes);
  if (in.gcount() != entry.bytes) return corrupt();
  return blob;
}

bool DiskStore::contains(std::uint64_t sample_id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return index_.contains(sample_id);
}

std::size_t DiskStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

Bytes DiskStore::stored_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::int64_t total = 0;
  for (const auto& [id, entry] : index_) total += entry.bytes;
  return Bytes(total);
}

std::size_t DiskStore::ingest_catalog(const dataset::Catalog& catalog, std::uint64_t seed,
                                      int quality) {
  std::size_t written = 0;
  for (const auto& meta : catalog.samples()) {
    if (contains(meta.id)) continue;
    const auto blob = dataset::materialize_encoded(meta, seed, quality);
    if (put(meta.id, blob)) ++written;
  }
  return written;
}

bool DiskStore::flush_manifest() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return write_manifest_locked();
}

}  // namespace sophon::storage
