#include "storage/server.h"

#include "codec/sjpg.h"
#include "net/wire.h"
#include "obs/trace.h"
#include "util/check.h"

namespace sophon::storage {

std::uint64_t augmentation_seed(std::uint64_t base_seed, std::uint64_t epoch,
                                std::uint64_t sample_id) {
  return derive_seed(derive_seed(derive_seed(base_seed, "augment"), epoch), sample_id);
}

StorageServer::StorageServer(BlobSource& store, const pipeline::Pipeline& pipeline,
                             pipeline::CostModel cost_model, Options options)
    : store_(store), pipeline_(pipeline), cost_model_(cost_model), options_(options) {}

net::FetchResponse StorageServer::fetch(const net::FetchRequest& request) {
  const auto prefix = static_cast<std::size_t>(request.directive.prefix_len);
  SOPHON_CHECK_MSG(prefix <= pipeline_.size(), "directive exceeds pipeline length");

  // Shard fast path: when the sample is materialised at a stage at or below
  // the requested cut, the stored bytes replace that much live execution.
  // Outcomes are exclusive per fetch: hit, corrupt (crc failed -> live
  // fallback), or miss.
  pipeline::SampleData payload;
  std::size_t base_stage = 0;     // stage `payload` is currently at
  bool from_shard = false;
  bool shard_direct = false;      // stored frame can ship verbatim
  std::vector<std::uint8_t> direct_frame;
  bool corrupt = false;
  if (options_.shard != nullptr) {
    if (const auto* entry = options_.shard->find(request.sample_id);
        entry != nullptr && entry->stage > 0 && entry->stage <= prefix) {
      obs::Span span(obs::SpanCategory::kStoragePrep, "shard_read");
      span.args().sample = static_cast<std::int64_t>(request.sample_id);
      span.args().prefix = static_cast<std::int32_t>(entry->stage);
      span.args().bytes = static_cast<std::int64_t>(entry->length);
      if (const auto stored = options_.shard->read_verified(*entry)) {
        if (entry->stage == prefix && request.directive.compress_quality == 0) {
          // Stage-exact, no §6 re-compression: the stored frame IS the
          // response payload — no deserialise, no pipeline, no allocator
          // churn beyond the reply buffer itself.
          direct_frame.assign(stored->begin(), stored->end());
          base_stage = prefix;
          from_shard = shard_direct = true;
        } else if (auto parsed = net::deserialize_sample(*stored)) {
          payload = std::move(*parsed);
          base_stage = entry->stage;
          from_shard = true;
        } else {
          corrupt = true;  // frame unparseable despite matching crc
        }
      } else {
        corrupt = true;  // bit rot: checksum mismatch, run the prefix live
      }
    }
  }

  if (!from_shard) {
    const auto* blob = store_.get(request.sample_id);
    SOPHON_CHECK_MSG(blob != nullptr, "fetch for unknown sample id");
    payload = pipeline::EncodedBlob{*blob};
  }

  Seconds prefix_cost;
  if (prefix > base_stage) {
    if (base_stage == 0) {
      // Meter the modeled cost of the prefix against the real source shape.
      // The blob header carries the dimensions the cost model needs.
      const auto& blob = std::get<pipeline::EncodedBlob>(payload).bytes;
      const auto hdr = codec::sjpg_peek(blob);
      SOPHON_CHECK_MSG(hdr.has_value(), "stored blob is not valid SJPG");
      const auto raw = pipeline::SampleShape::encoded(
          Bytes(static_cast<std::int64_t>(blob.size())), hdr->width, hdr->height, hdr->channels);
      prefix_cost = pipeline_.prefix_cost(raw, prefix, cost_model_);
    } else {
      // Only the ops the shard did not cover cost live CPU; walk the shape
      // forward from the stored stage.
      auto shape = options_.shard->find(request.sample_id)->shape();
      for (std::size_t i = base_stage; i < prefix; ++i) {
        prefix_cost += pipeline_.op(i).cost(shape, cost_model_);
        shape = pipeline_.op(i).out_shape(shape);
      }
    }

    obs::Span span(obs::SpanCategory::kStoragePrep, "storage_prefix");
    span.args().sample = static_cast<std::int64_t>(request.sample_id);
    span.args().prefix = static_cast<std::int32_t>(prefix);
    payload = pipeline_.run_seeded(
        std::move(payload), base_stage, prefix,
        augmentation_seed(options_.seed, request.epoch, request.sample_id),
        obs::SpanCategory::kStoragePrep);
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++requests_;
    if (prefix > 0) {
      ++offloaded_;
      cpu_time_ += prefix_cost;
    }
    if (options_.shard != nullptr) {
      if (from_shard) {
        ++shard_hits_;
      } else if (corrupt) {
        ++shard_corrupt_;
      } else {
        ++shard_misses_;
      }
    }
  }
  if (options_.metrics != nullptr) {
    options_.metrics->counter("sophon_server_fetch").increment();
    if (prefix > 0) {
      options_.metrics->counter("sophon_server_offload").increment();
      options_.metrics->duration("sophon_server_prefix_cpu").observe(prefix_cost);
    }
    if (options_.shard != nullptr) {
      options_.metrics
          ->counter(from_shard ? "sophon_shard_hit"
                               : (corrupt ? "sophon_shard_corrupt" : "sophon_shard_miss"))
          .increment();
    }
  }

  net::FetchResponse response;
  response.sample_id = request.sample_id;
  response.stage = static_cast<std::uint8_t>(prefix);
  response.provenance = from_shard ? net::FetchResponse::Provenance::kShard
                        : corrupt  ? net::FetchResponse::Provenance::kShardCorrupt
                                   : net::FetchResponse::Provenance::kLive;
  if (shard_direct) {
    response.payload = std::move(direct_frame);
    return response;
  }

  // §6 selective compression: re-encode an image payload before shipping.
  if (request.directive.compress_quality > 0) {
    SOPHON_CHECK_MSG(request.directive.compress_quality <= 100,
                     "compress_quality must be in [0, 100]");
    if (const auto* img = std::get_if<image::Image>(&payload)) {
      pipeline::EncodedBlob compressed;
      compressed.bytes = codec::sjpg_encode(*img, request.directive.compress_quality);
      // Only ship compressed when it actually helps.
      if (compressed.byte_size() < img->byte_size()) {
        payload = std::move(compressed);
        response.payload_compressed = true;
      }
    }
  }

  response.payload = net::serialize_sample(payload);
  return response;
}

Seconds StorageServer::modeled_cpu_time() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cpu_time_;
}

std::uint64_t StorageServer::requests_served() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return requests_;
}

std::uint64_t StorageServer::offloaded_requests() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return offloaded_;
}

std::uint64_t StorageServer::shard_hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return shard_hits_;
}

std::uint64_t StorageServer::shard_misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return shard_misses_;
}

std::uint64_t StorageServer::shard_corrupt() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return shard_corrupt_;
}

void StorageServer::reset_counters() {
  const std::lock_guard<std::mutex> lock(mutex_);
  cpu_time_ = Seconds(0.0);
  requests_ = 0;
  offloaded_ = 0;
  shard_hits_ = 0;
  shard_misses_ = 0;
  shard_corrupt_ = 0;
}

}  // namespace sophon::storage
