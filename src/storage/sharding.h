// Dataset sharding across a multi-node storage cluster.
//
// The paper's storage side is a cluster (distributed FS / object store); a
// single egress pipe connects it to the compute cluster. Samples live on
// shards, and offloaded preprocessing consumes the *owning* node's CPUs —
// so a skewed shard map can make one node the offloading bottleneck even
// when the cluster as a whole has spare cores. This module provides the
// shard-assignment strategies the sharded simulator and decision engine
// consume.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/units.h"

namespace sophon::storage {

/// Immutable sample→node assignment for a catalog.
class ShardMap {
 public:
  ShardMap() = default;

  /// Balanced hash placement (the common object-store behaviour).
  static ShardMap hashed(std::size_t num_samples, int num_nodes, std::uint64_t seed);

  /// Contiguous range placement (directory-per-node file layouts) — large
  /// samples often cluster, producing CPU skew under offloading.
  static ShardMap contiguous(std::size_t num_samples, int num_nodes);

  /// Explicit assignment (tests, custom layouts). Every entry must be in
  /// [0, num_nodes).
  static ShardMap explicit_map(std::vector<std::uint16_t> assignment, int num_nodes);

  [[nodiscard]] int num_nodes() const { return num_nodes_; }
  [[nodiscard]] std::size_t size() const { return node_of_.size(); }
  [[nodiscard]] int node_of(std::size_t sample_index) const;

  /// Samples per node (diagnostics / balance checks).
  [[nodiscard]] std::vector<std::size_t> histogram() const;

 private:
  std::vector<std::uint16_t> node_of_;
  int num_nodes_ = 0;
};

/// Replicated placement: every sample lives on `replication` distinct nodes
/// (primary first). Distributed stores replicate for durability; for
/// offloading it means the prefix can run on *any* replica holder, which
/// the replica-aware decision engine exploits to dodge hot nodes.
class ReplicaMap {
 public:
  ReplicaMap() = default;

  /// Extend a primary placement with `replication - 1` extra distinct
  /// replicas per sample, drawn deterministically. `replication` must be in
  /// [1, num_nodes].
  static ReplicaMap replicated(const ShardMap& primary, int replication, std::uint64_t seed);

  [[nodiscard]] int num_nodes() const { return num_nodes_; }
  [[nodiscard]] int replication() const { return replication_; }
  [[nodiscard]] std::size_t size() const {
    return replication_ == 0 ? 0 : nodes_.size() / static_cast<std::size_t>(replication_);
  }

  /// The replica holders of one sample (primary first).
  [[nodiscard]] std::span<const std::uint16_t> replicas_of(std::size_t sample_index) const;

 private:
  std::vector<std::uint16_t> nodes_;  // size() * replication_, row-major
  int num_nodes_ = 0;
  int replication_ = 0;
};

}  // namespace sophon::storage
