// File-backed blob store.
//
// The in-memory DatasetStore models the paper's "dataset cached in storage
// memory" setup; real deployments keep blobs on disk. DiskStore persists
// each sample as one file under a root directory plus a JSON manifest
// (sample id → file name, size, dimensions), supports ingesting a catalog's
// synthetic blobs, and can rebuild its index from an existing directory —
// so a dataset materialised once is reusable across processes.
#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataset/catalog.h"
#include "util/telemetry.h"
#include "util/units.h"

namespace sophon::storage {

class DiskStore {
 public:
  /// Open (or create) a store rooted at `root`. An existing manifest is
  /// loaded; otherwise the store starts empty. When `metrics` is set, blobs
  /// whose on-disk size disagrees with the manifest bump
  /// sophon_diskstore_corrupt (the registry must outlive the store).
  explicit DiskStore(std::filesystem::path root, MetricsRegistry* metrics = nullptr);

  /// Write a blob for `sample_id` (overwrites). Returns false on I/O error.
  bool put(std::uint64_t sample_id, const std::vector<std::uint8_t>& blob);

  /// Read a blob. nullopt if absent, unreadable, or when the file's size
  /// disagrees with the manifest — a truncated or tampered blob is a
  /// corruption signal (counted in sophon_diskstore_corrupt), never data.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> get(std::uint64_t sample_id) const;

  [[nodiscard]] bool contains(std::uint64_t sample_id) const;
  [[nodiscard]] std::size_t size() const;

  /// Total bytes on disk according to the manifest.
  [[nodiscard]] Bytes stored_bytes() const;

  /// Materialise and ingest every sample of a catalog (skipping ids already
  /// present). Returns the number of blobs written.
  std::size_t ingest_catalog(const dataset::Catalog& catalog, std::uint64_t seed, int quality);

  /// Persist the manifest now (also happens on every put).
  bool flush_manifest() const;

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }

 private:
  struct Entry {
    std::string file;
    std::int64_t bytes = 0;
  };

  [[nodiscard]] std::filesystem::path manifest_path() const { return root_ / "manifest.json"; }
  bool load_manifest();
  bool write_manifest_locked() const;

  std::filesystem::path root_;
  MetricsRegistry* metrics_ = nullptr;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> index_;
};

}  // namespace sophon::storage
