// The storage server: SOPHON's near-storage execution engine.
//
// Design step (e): "the storage server processes these operations as
// instructed, sending back the partially processed data". The server reads
// the raw blob from its in-memory store, runs the directive's pipeline
// prefix with the epoch/sample-keyed augmentation streams, and replies with
// the framed payload. It also meters the modeled CPU seconds it spends —
// the quantity the decision engine budgets as T_CS.
//
// The server is the innermost StorageService: clients usually reach it
// through decorators (net::ResilientStorageService for retries, a shard
// Router in clustered setups, net::FaultyStorageService in fault drills) —
// see docs/ARCHITECTURE.md, "Life of an offloaded fetch".
#pragma once

#include <cstdint>
#include <mutex>

#include "net/rpc.h"
#include "shard/format.h"
#include "util/telemetry.h"
#include "pipeline/cost_model.h"
#include "pipeline/pipeline.h"
#include "storage/blob_source.h"

namespace sophon::storage {

/// Derive the per-(epoch, sample) augmentation stream seed. Both the storage
/// server and the compute-side loader use this, so a pipeline cut at any
/// stage reproduces exactly the augmentations of uncut local execution.
[[nodiscard]] std::uint64_t augmentation_seed(std::uint64_t base_seed, std::uint64_t epoch,
                                              std::uint64_t sample_id);

class StorageServer final : public net::StorageService {
 public:
  struct Options {
    std::uint64_t seed = 0;  // base seed shared with the compute node
    /// Optional telemetry: when set, the server reports
    /// sophon_server_fetch/_offload counters and the
    /// sophon_server_prefix_cpu duration into this registry (which must
    /// outlive the server).
    MetricsRegistry* metrics = nullptr;
    /// Optional packed shard of pre-materialised pipeline prefixes (see
    /// src/shard/). When a requested prefix is materialised at or below the
    /// directive's cut, the server serves the stored bytes (crc-verified)
    /// instead of re-running the prefix — and falls back to live execution
    /// when the check fails. Borrowed; must outlive the server.
    const shard::ShardReader* shard = nullptr;
  };

  /// Borrows the store and pipeline; the caller keeps them alive.
  StorageServer(BlobSource& store, const pipeline::Pipeline& pipeline,
                pipeline::CostModel cost_model, Options options);

  /// Thread-safe: concurrent fetches only share the store (itself locked)
  /// and the counters (guarded here).
  [[nodiscard]] net::FetchResponse fetch(const net::FetchRequest& request) override;

  /// Modeled single-core CPU seconds spent on offloaded prefixes so far.
  /// Shard-served stages cost nothing here — that saving is the whole point.
  [[nodiscard]] Seconds modeled_cpu_time() const;
  [[nodiscard]] std::uint64_t requests_served() const;
  [[nodiscard]] std::uint64_t offloaded_requests() const;

  /// Shard serving outcomes (zero when no shard is attached). Every fetch
  /// with a shard attached lands in exactly one bucket: hit (stored prefix
  /// shipped), corrupt (crc failed, live fallback), or miss.
  [[nodiscard]] std::uint64_t shard_hits() const;
  [[nodiscard]] std::uint64_t shard_misses() const;
  [[nodiscard]] std::uint64_t shard_corrupt() const;

  void reset_counters();

 private:
  BlobSource& store_;
  const pipeline::Pipeline& pipeline_;
  pipeline::CostModel cost_model_;
  Options options_;
  mutable std::mutex mutex_;
  Seconds cpu_time_;
  std::uint64_t requests_ = 0;
  std::uint64_t offloaded_ = 0;
  std::uint64_t shard_hits_ = 0;
  std::uint64_t shard_misses_ = 0;
  std::uint64_t shard_corrupt_ = 0;
};

}  // namespace sophon::storage
