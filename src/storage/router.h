// Shard-routed fetch service: the real-path counterpart of the sharded
// simulator. A compute node talks to one logical endpoint; the router
// forwards each request to the storage node owning the sample's shard
// (or to an explicit execution map, e.g. the replica-aware engine's output).
#pragma once

#include <vector>

#include <mutex>

#include "net/rpc.h"
#include "storage/sharding.h"

namespace sophon::storage {

class RoutedFetchService final : public net::StorageService {
 public:
  /// Borrows the per-node services (index = node id) and the map; keep them
  /// alive. The map must cover every sample id that will be fetched.
  RoutedFetchService(std::vector<net::StorageService*> nodes, const ShardMap& shards);

  [[nodiscard]] net::FetchResponse fetch(const net::FetchRequest& request) override;

  /// Requests forwarded to each node so far.
  [[nodiscard]] std::vector<std::uint64_t> per_node_requests() const;

 private:
  std::vector<net::StorageService*> nodes_;
  const ShardMap& shards_;
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> requests_;
};

}  // namespace sophon::storage
