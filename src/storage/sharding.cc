#include "storage/sharding.h"

#include "util/check.h"
#include "util/rng.h"

namespace sophon::storage {

ShardMap ShardMap::hashed(std::size_t num_samples, int num_nodes, std::uint64_t seed) {
  SOPHON_CHECK(num_nodes >= 1 && num_nodes <= 0xffff);
  ShardMap map;
  map.num_nodes_ = num_nodes;
  map.node_of_.reserve(num_samples);
  for (std::size_t i = 0; i < num_samples; ++i) {
    map.node_of_.push_back(static_cast<std::uint16_t>(
        derive_seed(seed, static_cast<std::uint64_t>(i)) % static_cast<std::uint64_t>(num_nodes)));
  }
  return map;
}

ShardMap ShardMap::contiguous(std::size_t num_samples, int num_nodes) {
  SOPHON_CHECK(num_nodes >= 1 && num_nodes <= 0xffff);
  SOPHON_CHECK(num_samples > 0);
  ShardMap map;
  map.num_nodes_ = num_nodes;
  map.node_of_.reserve(num_samples);
  const std::size_t per_node = (num_samples + static_cast<std::size_t>(num_nodes) - 1) /
                               static_cast<std::size_t>(num_nodes);
  for (std::size_t i = 0; i < num_samples; ++i) {
    map.node_of_.push_back(static_cast<std::uint16_t>(i / per_node));
  }
  return map;
}

ShardMap ShardMap::explicit_map(std::vector<std::uint16_t> assignment, int num_nodes) {
  SOPHON_CHECK(num_nodes >= 1 && num_nodes <= 0xffff);
  for (const auto node : assignment) {
    SOPHON_CHECK_MSG(node < num_nodes, "shard assignment out of range");
  }
  ShardMap map;
  map.num_nodes_ = num_nodes;
  map.node_of_ = std::move(assignment);
  return map;
}

int ShardMap::node_of(std::size_t sample_index) const {
  SOPHON_CHECK(sample_index < node_of_.size());
  return node_of_[sample_index];
}

std::vector<std::size_t> ShardMap::histogram() const {
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_nodes_), 0);
  for (const auto node : node_of_) ++counts[node];
  return counts;
}

ReplicaMap ReplicaMap::replicated(const ShardMap& primary, int replication, std::uint64_t seed) {
  SOPHON_CHECK(replication >= 1);
  SOPHON_CHECK_MSG(replication <= primary.num_nodes(),
                   "cannot place more replicas than nodes");
  ReplicaMap map;
  map.num_nodes_ = primary.num_nodes();
  map.replication_ = replication;
  map.nodes_.reserve(primary.size() * static_cast<std::size_t>(replication));
  for (std::size_t i = 0; i < primary.size(); ++i) {
    const auto first = static_cast<std::uint16_t>(primary.node_of(i));
    map.nodes_.push_back(first);
    // Draw the remaining replicas without repetition, deterministically.
    Rng rng(derive_seed(derive_seed(seed, "replicas"), i));
    std::vector<bool> used(static_cast<std::size_t>(map.num_nodes_), false);
    used[first] = true;
    for (int r = 1; r < replication; ++r) {
      std::uint16_t node;
      do {
        node = static_cast<std::uint16_t>(rng.uniform_int(0, map.num_nodes_ - 1));
      } while (used[node]);
      used[node] = true;
      map.nodes_.push_back(node);
    }
  }
  return map;
}

std::span<const std::uint16_t> ReplicaMap::replicas_of(std::size_t sample_index) const {
  SOPHON_CHECK(sample_index < size());
  return {nodes_.data() + sample_index * static_cast<std::size_t>(replication_),
          static_cast<std::size_t>(replication_)};
}

}  // namespace sophon::storage
