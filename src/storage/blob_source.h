// The storage server's read-side abstraction.
//
// A BlobSource hands out stable pointers to encoded sample blobs; the
// in-memory DatasetStore (paper setup: dataset cached in storage RAM) and
// the disk-backed CachingDiskSource both implement it, so the same server
// serves either tier.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/disk_store.h"

namespace sophon::storage {

class BlobSource {
 public:
  virtual ~BlobSource() = default;

  /// The raw encoded blob for `sample_id`, or nullptr if unknown. The
  /// returned pointer must stay valid for the source's lifetime.
  /// Implementations must be thread-safe.
  [[nodiscard]] virtual const std::vector<std::uint8_t>* get(std::uint64_t sample_id) = 0;
};

/// Serves blobs from a DiskStore, pinning each blob in memory after its
/// first read (read-through cache without eviction — the working set of a
/// training job is the whole dataset anyway).
class CachingDiskSource final : public BlobSource {
 public:
  /// Borrows the store; keep it alive.
  explicit CachingDiskSource(const DiskStore& store) : store_(store) {}

  [[nodiscard]] const std::vector<std::uint8_t>* get(std::uint64_t sample_id) override;

  [[nodiscard]] std::size_t cached_count() const;

 private:
  const DiskStore& store_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::unique_ptr<std::vector<std::uint8_t>>> cache_;
};

}  // namespace sophon::storage
