// The storage node's in-memory dataset.
//
// The paper caches datasets in the storage node's memory to model the usual
// situation where aggregate intra-cluster read bandwidth dwarfs the
// inter-cluster link. This store holds real SJPG blobs, materialising them
// lazily from a catalog's synthetic generator the first time each sample is
// read (so small end-to-end runs pay only for what they touch).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dataset/catalog.h"
#include "storage/blob_source.h"
#include "util/units.h"

namespace sophon::storage {

class DatasetStore final : public BlobSource {
 public:
  /// A store backed by a catalog's synthetic generator; blobs are rendered
  /// and encoded on first access with the catalog's per-sample metadata.
  DatasetStore(const dataset::Catalog& catalog, std::uint64_t seed, int quality);

  /// Insert an explicit blob for `sample_id` (pre-materialised datasets).
  void put(std::uint64_t sample_id, std::vector<std::uint8_t> blob);

  /// Fetch the raw encoded blob. Materialises on first access; returns
  /// nullptr for ids outside the catalog with no explicit blob. Thread-safe;
  /// the returned pointer stays valid for the store's lifetime (blobs are
  /// never erased and unordered_map rehashing does not move values).
  [[nodiscard]] const std::vector<std::uint8_t>* get(std::uint64_t sample_id) override;

  [[nodiscard]] std::size_t size() const { return catalog_->size(); }
  [[nodiscard]] std::size_t materialized_count() const;

  /// Bytes currently resident (the "cached in memory" footprint).
  [[nodiscard]] Bytes resident_bytes() const;

 private:
  const dataset::Catalog* catalog_;
  std::uint64_t seed_;
  int quality_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> blobs_;
  Bytes resident_;
};

}  // namespace sophon::storage
