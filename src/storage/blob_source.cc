#include "storage/blob_source.h"

namespace sophon::storage {

const std::vector<std::uint8_t>* CachingDiskSource::get(std::uint64_t sample_id) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = cache_.find(sample_id); it != cache_.end()) return it->second.get();
  }
  auto blob = store_.get(sample_id);
  if (!blob) return nullptr;
  const std::lock_guard<std::mutex> lock(mutex_);
  // unique_ptr keeps the address stable even if the map rehashes, and a
  // racing loader simply keeps the first inserted copy.
  const auto [it, inserted] =
      cache_.emplace(sample_id, std::make_unique<std::vector<std::uint8_t>>(std::move(*blob)));
  return it->second.get();
}

std::size_t CachingDiskSource::cached_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

}  // namespace sophon::storage
