# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_fig1b_smoke "/root/repo/build/bench/fig1b_min_stage")
set_tests_properties(bench_fig1b_smoke PROPERTIES  PASS_REGULAR_EXPRESSION "75.9% benefit from offloading" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig1d_smoke "/root/repo/build/bench/fig1d_gpu_util")
set_tests_properties(bench_fig1d_smoke PROPERTIES  PASS_REGULAR_EXPRESSION "99\\.[0-9]%" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;42;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_table1_smoke "/root/repo/build/bench/table1_matrix")
set_tests_properties(bench_table1_smoke PROPERTIES  PASS_REGULAR_EXPRESSION "SOPHON      yes                  yes           yes" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;45;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig3_smoke "/root/repo/build/bench/fig3_ample_cpu")
set_tests_properties(bench_fig3_smoke PROPERTIES  PASS_REGULAR_EXPRESSION "2\\.26x less" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;48;add_test;/root/repo/bench/CMakeLists.txt;0;")
