file(REMOVE_RECURSE
  "CMakeFiles/fig1a_size_trajectory.dir/fig1a_size_trajectory.cc.o"
  "CMakeFiles/fig1a_size_trajectory.dir/fig1a_size_trajectory.cc.o.d"
  "fig1a_size_trajectory"
  "fig1a_size_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1a_size_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
