# Empty dependencies file for fig1a_size_trajectory.
# This may be replaced when dependencies are built.
