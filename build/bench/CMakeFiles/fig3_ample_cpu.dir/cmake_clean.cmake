file(REMOVE_RECURSE
  "CMakeFiles/fig3_ample_cpu.dir/fig3_ample_cpu.cc.o"
  "CMakeFiles/fig3_ample_cpu.dir/fig3_ample_cpu.cc.o.d"
  "fig3_ample_cpu"
  "fig3_ample_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_ample_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
