# Empty compiler generated dependencies file for fig3_ample_cpu.
# This may be replaced when dependencies are built.
