# Empty dependencies file for ablation_hetero_cpu.
# This may be replaced when dependencies are built.
