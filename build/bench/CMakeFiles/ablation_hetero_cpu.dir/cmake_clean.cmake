file(REMOVE_RECURSE
  "CMakeFiles/ablation_hetero_cpu.dir/ablation_hetero_cpu.cc.o"
  "CMakeFiles/ablation_hetero_cpu.dir/ablation_hetero_cpu.cc.o.d"
  "ablation_hetero_cpu"
  "ablation_hetero_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hetero_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
