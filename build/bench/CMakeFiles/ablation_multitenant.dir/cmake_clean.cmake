file(REMOVE_RECURSE
  "CMakeFiles/ablation_multitenant.dir/ablation_multitenant.cc.o"
  "CMakeFiles/ablation_multitenant.dir/ablation_multitenant.cc.o.d"
  "ablation_multitenant"
  "ablation_multitenant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multitenant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
