# Empty dependencies file for ablation_timeline.
# This may be replaced when dependencies are built.
