file(REMOVE_RECURSE
  "CMakeFiles/ablation_timeline.dir/ablation_timeline.cc.o"
  "CMakeFiles/ablation_timeline.dir/ablation_timeline.cc.o.d"
  "ablation_timeline"
  "ablation_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
