# Empty dependencies file for ablation_stop_rule.
# This may be replaced when dependencies are built.
