file(REMOVE_RECURSE
  "CMakeFiles/ablation_stop_rule.dir/ablation_stop_rule.cc.o"
  "CMakeFiles/ablation_stop_rule.dir/ablation_stop_rule.cc.o.d"
  "ablation_stop_rule"
  "ablation_stop_rule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stop_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
