# Empty compiler generated dependencies file for fig1b_min_stage.
# This may be replaced when dependencies are built.
