file(REMOVE_RECURSE
  "CMakeFiles/fig1b_min_stage.dir/fig1b_min_stage.cc.o"
  "CMakeFiles/fig1b_min_stage.dir/fig1b_min_stage.cc.o.d"
  "fig1b_min_stage"
  "fig1b_min_stage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1b_min_stage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
