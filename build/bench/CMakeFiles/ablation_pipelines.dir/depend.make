# Empty dependencies file for ablation_pipelines.
# This may be replaced when dependencies are built.
