file(REMOVE_RECURSE
  "CMakeFiles/ablation_pipelines.dir/ablation_pipelines.cc.o"
  "CMakeFiles/ablation_pipelines.dir/ablation_pipelines.cc.o.d"
  "ablation_pipelines"
  "ablation_pipelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pipelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
