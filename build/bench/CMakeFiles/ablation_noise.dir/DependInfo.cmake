
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_noise.cc" "bench/CMakeFiles/ablation_noise.dir/ablation_noise.cc.o" "gcc" "bench/CMakeFiles/ablation_noise.dir/ablation_noise.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sophon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/sophon_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sophon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/sophon_model.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sophon_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/sophon_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sophon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/sophon_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/sophon_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/sophon_image.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sophon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
