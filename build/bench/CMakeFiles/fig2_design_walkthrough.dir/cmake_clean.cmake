file(REMOVE_RECURSE
  "CMakeFiles/fig2_design_walkthrough.dir/fig2_design_walkthrough.cc.o"
  "CMakeFiles/fig2_design_walkthrough.dir/fig2_design_walkthrough.cc.o.d"
  "fig2_design_walkthrough"
  "fig2_design_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_design_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
