# Empty compiler generated dependencies file for micro_loader.
# This may be replaced when dependencies are built.
