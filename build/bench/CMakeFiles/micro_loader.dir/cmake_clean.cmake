file(REMOVE_RECURSE
  "CMakeFiles/micro_loader.dir/micro_loader.cc.o"
  "CMakeFiles/micro_loader.dir/micro_loader.cc.o.d"
  "micro_loader"
  "micro_loader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
