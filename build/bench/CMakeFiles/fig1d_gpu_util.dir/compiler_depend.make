# Empty compiler generated dependencies file for fig1d_gpu_util.
# This may be replaced when dependencies are built.
