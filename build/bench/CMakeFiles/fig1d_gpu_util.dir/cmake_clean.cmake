file(REMOVE_RECURSE
  "CMakeFiles/fig1d_gpu_util.dir/fig1d_gpu_util.cc.o"
  "CMakeFiles/fig1d_gpu_util.dir/fig1d_gpu_util.cc.o.d"
  "fig1d_gpu_util"
  "fig1d_gpu_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1d_gpu_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
