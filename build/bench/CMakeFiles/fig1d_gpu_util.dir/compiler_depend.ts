# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig1d_gpu_util.
