# Empty dependencies file for fig1c_efficiency.
# This may be replaced when dependencies are built.
