file(REMOVE_RECURSE
  "CMakeFiles/fig1c_efficiency.dir/fig1c_efficiency.cc.o"
  "CMakeFiles/fig1c_efficiency.dir/fig1c_efficiency.cc.o.d"
  "fig1c_efficiency"
  "fig1c_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1c_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
