# Empty compiler generated dependencies file for fig4_limited_cpu.
# This may be replaced when dependencies are built.
