# Empty dependencies file for ablation_gpu_scaling.
# This may be replaced when dependencies are built.
