file(REMOVE_RECURSE
  "CMakeFiles/ablation_gpu_scaling.dir/ablation_gpu_scaling.cc.o"
  "CMakeFiles/ablation_gpu_scaling.dir/ablation_gpu_scaling.cc.o.d"
  "ablation_gpu_scaling"
  "ablation_gpu_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gpu_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
