file(REMOVE_RECURSE
  "CMakeFiles/sophonctl.dir/sophonctl.cc.o"
  "CMakeFiles/sophonctl.dir/sophonctl.cc.o.d"
  "sophonctl"
  "sophonctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sophonctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
