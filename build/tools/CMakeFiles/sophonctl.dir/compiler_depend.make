# Empty compiler generated dependencies file for sophonctl.
# This may be replaced when dependencies are built.
