# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_roundtrip "bash" "-c" "set -e; d=\$(mktemp -d); trap 'rm -rf \$d' EXIT;     /root/repo/build/tools/sophonctl gen-profiles --dataset openimages --samples 2000 --out \$d/p.json;     /root/repo/build/tools/sophonctl decide --profiles \$d/p.json --mbps 100 --storage-cores 4 --tg-seconds 1 --out \$d/plan.json;     /root/repo/build/tools/sophonctl simulate --dataset openimages --samples 2000 --plan \$d/plan.json --mbps 100 --storage-cores 4")
set_tests_properties(cli_roundtrip PROPERTIES  PASS_REGULAR_EXPRESSION "offloaded" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_evaluate "/root/repo/build/tools/sophonctl" "evaluate" "--dataset" "imagenet" "--samples" "5000" "--mbps" "100")
set_tests_properties(cli_evaluate PROPERTIES  PASS_REGULAR_EXPRESSION "SOPHON" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_command "/root/repo/build/tools/sophonctl" "frobnicate")
set_tests_properties(cli_bad_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
