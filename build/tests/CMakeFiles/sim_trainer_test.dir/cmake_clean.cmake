file(REMOVE_RECURSE
  "CMakeFiles/sim_trainer_test.dir/sim_trainer_test.cc.o"
  "CMakeFiles/sim_trainer_test.dir/sim_trainer_test.cc.o.d"
  "sim_trainer_test"
  "sim_trainer_test.pdb"
  "sim_trainer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
