# Empty dependencies file for sim_trainer_test.
# This may be replaced when dependencies are built.
