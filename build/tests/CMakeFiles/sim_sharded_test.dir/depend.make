# Empty dependencies file for sim_sharded_test.
# This may be replaced when dependencies are built.
