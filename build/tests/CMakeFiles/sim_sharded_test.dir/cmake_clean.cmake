file(REMOVE_RECURSE
  "CMakeFiles/sim_sharded_test.dir/sim_sharded_test.cc.o"
  "CMakeFiles/sim_sharded_test.dir/sim_sharded_test.cc.o.d"
  "sim_sharded_test"
  "sim_sharded_test.pdb"
  "sim_sharded_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_sharded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
