# Empty dependencies file for dataset_calibrate_test.
# This may be replaced when dependencies are built.
