file(REMOVE_RECURSE
  "CMakeFiles/dataset_calibrate_test.dir/dataset_calibrate_test.cc.o"
  "CMakeFiles/dataset_calibrate_test.dir/dataset_calibrate_test.cc.o.d"
  "dataset_calibrate_test"
  "dataset_calibrate_test.pdb"
  "dataset_calibrate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_calibrate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
