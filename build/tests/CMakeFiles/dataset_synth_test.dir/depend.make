# Empty dependencies file for dataset_synth_test.
# This may be replaced when dependencies are built.
