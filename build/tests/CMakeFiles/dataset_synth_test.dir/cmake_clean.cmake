file(REMOVE_RECURSE
  "CMakeFiles/dataset_synth_test.dir/dataset_synth_test.cc.o"
  "CMakeFiles/dataset_synth_test.dir/dataset_synth_test.cc.o.d"
  "dataset_synth_test"
  "dataset_synth_test.pdb"
  "dataset_synth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_synth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
