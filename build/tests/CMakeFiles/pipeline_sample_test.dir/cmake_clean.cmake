file(REMOVE_RECURSE
  "CMakeFiles/pipeline_sample_test.dir/pipeline_sample_test.cc.o"
  "CMakeFiles/pipeline_sample_test.dir/pipeline_sample_test.cc.o.d"
  "pipeline_sample_test"
  "pipeline_sample_test.pdb"
  "pipeline_sample_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_sample_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
