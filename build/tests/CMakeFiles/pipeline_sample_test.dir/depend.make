# Empty dependencies file for pipeline_sample_test.
# This may be replaced when dependencies are built.
