file(REMOVE_RECURSE
  "CMakeFiles/pipeline_extra_ops_test.dir/pipeline_extra_ops_test.cc.o"
  "CMakeFiles/pipeline_extra_ops_test.dir/pipeline_extra_ops_test.cc.o.d"
  "pipeline_extra_ops_test"
  "pipeline_extra_ops_test.pdb"
  "pipeline_extra_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_extra_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
