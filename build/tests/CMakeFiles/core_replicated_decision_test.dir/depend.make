# Empty dependencies file for core_replicated_decision_test.
# This may be replaced when dependencies are built.
