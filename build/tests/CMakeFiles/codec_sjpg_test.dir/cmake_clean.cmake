file(REMOVE_RECURSE
  "CMakeFiles/codec_sjpg_test.dir/codec_sjpg_test.cc.o"
  "CMakeFiles/codec_sjpg_test.dir/codec_sjpg_test.cc.o.d"
  "codec_sjpg_test"
  "codec_sjpg_test.pdb"
  "codec_sjpg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_sjpg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
