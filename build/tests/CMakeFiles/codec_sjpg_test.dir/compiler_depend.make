# Empty compiler generated dependencies file for codec_sjpg_test.
# This may be replaced when dependencies are built.
