file(REMOVE_RECURSE
  "CMakeFiles/pipeline_cost_model_test.dir/pipeline_cost_model_test.cc.o"
  "CMakeFiles/pipeline_cost_model_test.dir/pipeline_cost_model_test.cc.o.d"
  "pipeline_cost_model_test"
  "pipeline_cost_model_test.pdb"
  "pipeline_cost_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_cost_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
