# Empty compiler generated dependencies file for compression_path_test.
# This may be replaced when dependencies are built.
