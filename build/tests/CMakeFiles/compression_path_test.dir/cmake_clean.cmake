file(REMOVE_RECURSE
  "CMakeFiles/compression_path_test.dir/compression_path_test.cc.o"
  "CMakeFiles/compression_path_test.dir/compression_path_test.cc.o.d"
  "compression_path_test"
  "compression_path_test.pdb"
  "compression_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
