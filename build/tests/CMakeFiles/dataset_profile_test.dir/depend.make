# Empty dependencies file for dataset_profile_test.
# This may be replaced when dependencies are built.
