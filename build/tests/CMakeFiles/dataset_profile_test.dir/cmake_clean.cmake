file(REMOVE_RECURSE
  "CMakeFiles/dataset_profile_test.dir/dataset_profile_test.cc.o"
  "CMakeFiles/dataset_profile_test.dir/dataset_profile_test.cc.o.d"
  "dataset_profile_test"
  "dataset_profile_test.pdb"
  "dataset_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
