# Empty compiler generated dependencies file for core_decision_fuzz_test.
# This may be replaced when dependencies are built.
