file(REMOVE_RECURSE
  "CMakeFiles/codec_bitio_test.dir/codec_bitio_test.cc.o"
  "CMakeFiles/codec_bitio_test.dir/codec_bitio_test.cc.o.d"
  "codec_bitio_test"
  "codec_bitio_test.pdb"
  "codec_bitio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_bitio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
