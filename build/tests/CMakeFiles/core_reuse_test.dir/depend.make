# Empty dependencies file for core_reuse_test.
# This may be replaced when dependencies are built.
