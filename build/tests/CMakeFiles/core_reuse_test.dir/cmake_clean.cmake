file(REMOVE_RECURSE
  "CMakeFiles/core_reuse_test.dir/core_reuse_test.cc.o"
  "CMakeFiles/core_reuse_test.dir/core_reuse_test.cc.o.d"
  "core_reuse_test"
  "core_reuse_test.pdb"
  "core_reuse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_reuse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
