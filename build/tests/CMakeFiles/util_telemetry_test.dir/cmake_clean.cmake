file(REMOVE_RECURSE
  "CMakeFiles/util_telemetry_test.dir/util_telemetry_test.cc.o"
  "CMakeFiles/util_telemetry_test.dir/util_telemetry_test.cc.o.d"
  "util_telemetry_test"
  "util_telemetry_test.pdb"
  "util_telemetry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_telemetry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
