# Empty dependencies file for util_telemetry_test.
# This may be replaced when dependencies are built.
