file(REMOVE_RECURSE
  "CMakeFiles/cache_training_test.dir/cache_training_test.cc.o"
  "CMakeFiles/cache_training_test.dir/cache_training_test.cc.o.d"
  "cache_training_test"
  "cache_training_test.pdb"
  "cache_training_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_training_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
