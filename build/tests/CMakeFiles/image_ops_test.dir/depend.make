# Empty dependencies file for image_ops_test.
# This may be replaced when dependencies are built.
