file(REMOVE_RECURSE
  "CMakeFiles/image_ops_test.dir/image_ops_test.cc.o"
  "CMakeFiles/image_ops_test.dir/image_ops_test.cc.o.d"
  "image_ops_test"
  "image_ops_test.pdb"
  "image_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
