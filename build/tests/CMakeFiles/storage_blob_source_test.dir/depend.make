# Empty dependencies file for storage_blob_source_test.
# This may be replaced when dependencies are built.
