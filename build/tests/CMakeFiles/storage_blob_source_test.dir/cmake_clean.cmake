file(REMOVE_RECURSE
  "CMakeFiles/storage_blob_source_test.dir/storage_blob_source_test.cc.o"
  "CMakeFiles/storage_blob_source_test.dir/storage_blob_source_test.cc.o.d"
  "storage_blob_source_test"
  "storage_blob_source_test.pdb"
  "storage_blob_source_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_blob_source_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
