file(REMOVE_RECURSE
  "CMakeFiles/core_multitenant_test.dir/core_multitenant_test.cc.o"
  "CMakeFiles/core_multitenant_test.dir/core_multitenant_test.cc.o.d"
  "core_multitenant_test"
  "core_multitenant_test.pdb"
  "core_multitenant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_multitenant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
