# Empty dependencies file for core_multitenant_test.
# This may be replaced when dependencies are built.
