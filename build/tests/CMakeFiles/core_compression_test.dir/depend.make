# Empty dependencies file for core_compression_test.
# This may be replaced when dependencies are built.
