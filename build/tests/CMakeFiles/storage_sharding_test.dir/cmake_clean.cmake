file(REMOVE_RECURSE
  "CMakeFiles/storage_sharding_test.dir/storage_sharding_test.cc.o"
  "CMakeFiles/storage_sharding_test.dir/storage_sharding_test.cc.o.d"
  "storage_sharding_test"
  "storage_sharding_test.pdb"
  "storage_sharding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_sharding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
