file(REMOVE_RECURSE
  "CMakeFiles/dataset_catalog_test.dir/dataset_catalog_test.cc.o"
  "CMakeFiles/dataset_catalog_test.dir/dataset_catalog_test.cc.o.d"
  "dataset_catalog_test"
  "dataset_catalog_test.pdb"
  "dataset_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
