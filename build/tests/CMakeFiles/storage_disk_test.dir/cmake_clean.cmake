file(REMOVE_RECURSE
  "CMakeFiles/storage_disk_test.dir/storage_disk_test.cc.o"
  "CMakeFiles/storage_disk_test.dir/storage_disk_test.cc.o.d"
  "storage_disk_test"
  "storage_disk_test.pdb"
  "storage_disk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_disk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
