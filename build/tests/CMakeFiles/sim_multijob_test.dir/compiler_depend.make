# Empty compiler generated dependencies file for sim_multijob_test.
# This may be replaced when dependencies are built.
