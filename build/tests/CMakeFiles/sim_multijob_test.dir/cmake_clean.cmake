file(REMOVE_RECURSE
  "CMakeFiles/sim_multijob_test.dir/sim_multijob_test.cc.o"
  "CMakeFiles/sim_multijob_test.dir/sim_multijob_test.cc.o.d"
  "sim_multijob_test"
  "sim_multijob_test.pdb"
  "sim_multijob_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_multijob_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
