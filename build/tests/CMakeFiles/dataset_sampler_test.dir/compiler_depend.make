# Empty compiler generated dependencies file for dataset_sampler_test.
# This may be replaced when dependencies are built.
