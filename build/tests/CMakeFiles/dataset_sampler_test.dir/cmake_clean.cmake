file(REMOVE_RECURSE
  "CMakeFiles/dataset_sampler_test.dir/dataset_sampler_test.cc.o"
  "CMakeFiles/dataset_sampler_test.dir/dataset_sampler_test.cc.o.d"
  "dataset_sampler_test"
  "dataset_sampler_test.pdb"
  "dataset_sampler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
