# Empty compiler generated dependencies file for model_gpu_test.
# This may be replaced when dependencies are built.
