file(REMOVE_RECURSE
  "CMakeFiles/model_gpu_test.dir/model_gpu_test.cc.o"
  "CMakeFiles/model_gpu_test.dir/model_gpu_test.cc.o.d"
  "model_gpu_test"
  "model_gpu_test.pdb"
  "model_gpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_gpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
