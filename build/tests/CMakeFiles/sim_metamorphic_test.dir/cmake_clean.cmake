file(REMOVE_RECURSE
  "CMakeFiles/sim_metamorphic_test.dir/sim_metamorphic_test.cc.o"
  "CMakeFiles/sim_metamorphic_test.dir/sim_metamorphic_test.cc.o.d"
  "sim_metamorphic_test"
  "sim_metamorphic_test.pdb"
  "sim_metamorphic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_metamorphic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
