file(REMOVE_RECURSE
  "libsophon_util.a"
)
