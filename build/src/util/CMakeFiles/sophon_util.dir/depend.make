# Empty dependencies file for sophon_util.
# This may be replaced when dependencies are built.
