file(REMOVE_RECURSE
  "CMakeFiles/sophon_util.dir/histogram.cc.o"
  "CMakeFiles/sophon_util.dir/histogram.cc.o.d"
  "CMakeFiles/sophon_util.dir/json.cc.o"
  "CMakeFiles/sophon_util.dir/json.cc.o.d"
  "CMakeFiles/sophon_util.dir/rng.cc.o"
  "CMakeFiles/sophon_util.dir/rng.cc.o.d"
  "CMakeFiles/sophon_util.dir/stats.cc.o"
  "CMakeFiles/sophon_util.dir/stats.cc.o.d"
  "CMakeFiles/sophon_util.dir/table.cc.o"
  "CMakeFiles/sophon_util.dir/table.cc.o.d"
  "CMakeFiles/sophon_util.dir/telemetry.cc.o"
  "CMakeFiles/sophon_util.dir/telemetry.cc.o.d"
  "CMakeFiles/sophon_util.dir/units.cc.o"
  "CMakeFiles/sophon_util.dir/units.cc.o.d"
  "libsophon_util.a"
  "libsophon_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sophon_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
