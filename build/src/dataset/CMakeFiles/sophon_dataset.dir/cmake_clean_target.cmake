file(REMOVE_RECURSE
  "libsophon_dataset.a"
)
