
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataset/calibrate.cc" "src/dataset/CMakeFiles/sophon_dataset.dir/calibrate.cc.o" "gcc" "src/dataset/CMakeFiles/sophon_dataset.dir/calibrate.cc.o.d"
  "/root/repo/src/dataset/catalog.cc" "src/dataset/CMakeFiles/sophon_dataset.dir/catalog.cc.o" "gcc" "src/dataset/CMakeFiles/sophon_dataset.dir/catalog.cc.o.d"
  "/root/repo/src/dataset/profile.cc" "src/dataset/CMakeFiles/sophon_dataset.dir/profile.cc.o" "gcc" "src/dataset/CMakeFiles/sophon_dataset.dir/profile.cc.o.d"
  "/root/repo/src/dataset/sampler.cc" "src/dataset/CMakeFiles/sophon_dataset.dir/sampler.cc.o" "gcc" "src/dataset/CMakeFiles/sophon_dataset.dir/sampler.cc.o.d"
  "/root/repo/src/dataset/synth.cc" "src/dataset/CMakeFiles/sophon_dataset.dir/synth.cc.o" "gcc" "src/dataset/CMakeFiles/sophon_dataset.dir/synth.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sophon_util.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/sophon_image.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/sophon_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/sophon_pipeline.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
