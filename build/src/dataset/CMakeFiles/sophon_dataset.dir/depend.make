# Empty dependencies file for sophon_dataset.
# This may be replaced when dependencies are built.
