file(REMOVE_RECURSE
  "CMakeFiles/sophon_dataset.dir/calibrate.cc.o"
  "CMakeFiles/sophon_dataset.dir/calibrate.cc.o.d"
  "CMakeFiles/sophon_dataset.dir/catalog.cc.o"
  "CMakeFiles/sophon_dataset.dir/catalog.cc.o.d"
  "CMakeFiles/sophon_dataset.dir/profile.cc.o"
  "CMakeFiles/sophon_dataset.dir/profile.cc.o.d"
  "CMakeFiles/sophon_dataset.dir/sampler.cc.o"
  "CMakeFiles/sophon_dataset.dir/sampler.cc.o.d"
  "CMakeFiles/sophon_dataset.dir/synth.cc.o"
  "CMakeFiles/sophon_dataset.dir/synth.cc.o.d"
  "libsophon_dataset.a"
  "libsophon_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sophon_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
