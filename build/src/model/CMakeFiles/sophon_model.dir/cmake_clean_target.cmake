file(REMOVE_RECURSE
  "libsophon_model.a"
)
