# Empty dependencies file for sophon_model.
# This may be replaced when dependencies are built.
