file(REMOVE_RECURSE
  "CMakeFiles/sophon_model.dir/gpu_model.cc.o"
  "CMakeFiles/sophon_model.dir/gpu_model.cc.o.d"
  "libsophon_model.a"
  "libsophon_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sophon_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
