file(REMOVE_RECURSE
  "libsophon_sim.a"
)
