# Empty compiler generated dependencies file for sophon_sim.
# This may be replaced when dependencies are built.
