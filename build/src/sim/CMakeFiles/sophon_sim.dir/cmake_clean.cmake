file(REMOVE_RECURSE
  "CMakeFiles/sophon_sim.dir/multijob.cc.o"
  "CMakeFiles/sophon_sim.dir/multijob.cc.o.d"
  "CMakeFiles/sophon_sim.dir/resources.cc.o"
  "CMakeFiles/sophon_sim.dir/resources.cc.o.d"
  "CMakeFiles/sophon_sim.dir/trace.cc.o"
  "CMakeFiles/sophon_sim.dir/trace.cc.o.d"
  "CMakeFiles/sophon_sim.dir/trainer.cc.o"
  "CMakeFiles/sophon_sim.dir/trainer.cc.o.d"
  "libsophon_sim.a"
  "libsophon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sophon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
