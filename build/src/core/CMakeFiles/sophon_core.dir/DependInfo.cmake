
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/compression.cc" "src/core/CMakeFiles/sophon_core.dir/compression.cc.o" "gcc" "src/core/CMakeFiles/sophon_core.dir/compression.cc.o.d"
  "/root/repo/src/core/decision.cc" "src/core/CMakeFiles/sophon_core.dir/decision.cc.o" "gcc" "src/core/CMakeFiles/sophon_core.dir/decision.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/sophon_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/sophon_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/multitenant.cc" "src/core/CMakeFiles/sophon_core.dir/multitenant.cc.o" "gcc" "src/core/CMakeFiles/sophon_core.dir/multitenant.cc.o.d"
  "/root/repo/src/core/plan.cc" "src/core/CMakeFiles/sophon_core.dir/plan.cc.o" "gcc" "src/core/CMakeFiles/sophon_core.dir/plan.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/core/CMakeFiles/sophon_core.dir/policy.cc.o" "gcc" "src/core/CMakeFiles/sophon_core.dir/policy.cc.o.d"
  "/root/repo/src/core/profiler.cc" "src/core/CMakeFiles/sophon_core.dir/profiler.cc.o" "gcc" "src/core/CMakeFiles/sophon_core.dir/profiler.cc.o.d"
  "/root/repo/src/core/reuse.cc" "src/core/CMakeFiles/sophon_core.dir/reuse.cc.o" "gcc" "src/core/CMakeFiles/sophon_core.dir/reuse.cc.o.d"
  "/root/repo/src/core/runner.cc" "src/core/CMakeFiles/sophon_core.dir/runner.cc.o" "gcc" "src/core/CMakeFiles/sophon_core.dir/runner.cc.o.d"
  "/root/repo/src/core/serialize.cc" "src/core/CMakeFiles/sophon_core.dir/serialize.cc.o" "gcc" "src/core/CMakeFiles/sophon_core.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sophon_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/sophon_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/sophon_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sophon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sophon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/sophon_model.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sophon_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/sophon_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/sophon_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
