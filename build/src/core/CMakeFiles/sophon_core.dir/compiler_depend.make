# Empty compiler generated dependencies file for sophon_core.
# This may be replaced when dependencies are built.
