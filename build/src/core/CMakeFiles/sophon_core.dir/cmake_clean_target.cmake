file(REMOVE_RECURSE
  "libsophon_core.a"
)
