file(REMOVE_RECURSE
  "CMakeFiles/sophon_core.dir/compression.cc.o"
  "CMakeFiles/sophon_core.dir/compression.cc.o.d"
  "CMakeFiles/sophon_core.dir/decision.cc.o"
  "CMakeFiles/sophon_core.dir/decision.cc.o.d"
  "CMakeFiles/sophon_core.dir/metrics.cc.o"
  "CMakeFiles/sophon_core.dir/metrics.cc.o.d"
  "CMakeFiles/sophon_core.dir/multitenant.cc.o"
  "CMakeFiles/sophon_core.dir/multitenant.cc.o.d"
  "CMakeFiles/sophon_core.dir/plan.cc.o"
  "CMakeFiles/sophon_core.dir/plan.cc.o.d"
  "CMakeFiles/sophon_core.dir/policy.cc.o"
  "CMakeFiles/sophon_core.dir/policy.cc.o.d"
  "CMakeFiles/sophon_core.dir/profiler.cc.o"
  "CMakeFiles/sophon_core.dir/profiler.cc.o.d"
  "CMakeFiles/sophon_core.dir/reuse.cc.o"
  "CMakeFiles/sophon_core.dir/reuse.cc.o.d"
  "CMakeFiles/sophon_core.dir/runner.cc.o"
  "CMakeFiles/sophon_core.dir/runner.cc.o.d"
  "CMakeFiles/sophon_core.dir/serialize.cc.o"
  "CMakeFiles/sophon_core.dir/serialize.cc.o.d"
  "libsophon_core.a"
  "libsophon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sophon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
