
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/blob_source.cc" "src/storage/CMakeFiles/sophon_storage.dir/blob_source.cc.o" "gcc" "src/storage/CMakeFiles/sophon_storage.dir/blob_source.cc.o.d"
  "/root/repo/src/storage/dataset_store.cc" "src/storage/CMakeFiles/sophon_storage.dir/dataset_store.cc.o" "gcc" "src/storage/CMakeFiles/sophon_storage.dir/dataset_store.cc.o.d"
  "/root/repo/src/storage/disk_store.cc" "src/storage/CMakeFiles/sophon_storage.dir/disk_store.cc.o" "gcc" "src/storage/CMakeFiles/sophon_storage.dir/disk_store.cc.o.d"
  "/root/repo/src/storage/router.cc" "src/storage/CMakeFiles/sophon_storage.dir/router.cc.o" "gcc" "src/storage/CMakeFiles/sophon_storage.dir/router.cc.o.d"
  "/root/repo/src/storage/server.cc" "src/storage/CMakeFiles/sophon_storage.dir/server.cc.o" "gcc" "src/storage/CMakeFiles/sophon_storage.dir/server.cc.o.d"
  "/root/repo/src/storage/sharding.cc" "src/storage/CMakeFiles/sophon_storage.dir/sharding.cc.o" "gcc" "src/storage/CMakeFiles/sophon_storage.dir/sharding.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sophon_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/sophon_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sophon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/sophon_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/sophon_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/sophon_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
