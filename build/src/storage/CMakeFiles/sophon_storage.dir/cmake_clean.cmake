file(REMOVE_RECURSE
  "CMakeFiles/sophon_storage.dir/blob_source.cc.o"
  "CMakeFiles/sophon_storage.dir/blob_source.cc.o.d"
  "CMakeFiles/sophon_storage.dir/dataset_store.cc.o"
  "CMakeFiles/sophon_storage.dir/dataset_store.cc.o.d"
  "CMakeFiles/sophon_storage.dir/disk_store.cc.o"
  "CMakeFiles/sophon_storage.dir/disk_store.cc.o.d"
  "CMakeFiles/sophon_storage.dir/router.cc.o"
  "CMakeFiles/sophon_storage.dir/router.cc.o.d"
  "CMakeFiles/sophon_storage.dir/server.cc.o"
  "CMakeFiles/sophon_storage.dir/server.cc.o.d"
  "CMakeFiles/sophon_storage.dir/sharding.cc.o"
  "CMakeFiles/sophon_storage.dir/sharding.cc.o.d"
  "libsophon_storage.a"
  "libsophon_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sophon_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
