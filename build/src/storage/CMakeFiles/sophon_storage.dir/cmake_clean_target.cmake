file(REMOVE_RECURSE
  "libsophon_storage.a"
)
