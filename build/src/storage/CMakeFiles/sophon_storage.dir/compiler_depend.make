# Empty compiler generated dependencies file for sophon_storage.
# This may be replaced when dependencies are built.
