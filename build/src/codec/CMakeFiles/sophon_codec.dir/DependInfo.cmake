
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/bitio.cc" "src/codec/CMakeFiles/sophon_codec.dir/bitio.cc.o" "gcc" "src/codec/CMakeFiles/sophon_codec.dir/bitio.cc.o.d"
  "/root/repo/src/codec/huffman.cc" "src/codec/CMakeFiles/sophon_codec.dir/huffman.cc.o" "gcc" "src/codec/CMakeFiles/sophon_codec.dir/huffman.cc.o.d"
  "/root/repo/src/codec/sjpg.cc" "src/codec/CMakeFiles/sophon_codec.dir/sjpg.cc.o" "gcc" "src/codec/CMakeFiles/sophon_codec.dir/sjpg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sophon_util.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/sophon_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
