# Empty compiler generated dependencies file for sophon_codec.
# This may be replaced when dependencies are built.
