file(REMOVE_RECURSE
  "CMakeFiles/sophon_codec.dir/bitio.cc.o"
  "CMakeFiles/sophon_codec.dir/bitio.cc.o.d"
  "CMakeFiles/sophon_codec.dir/huffman.cc.o"
  "CMakeFiles/sophon_codec.dir/huffman.cc.o.d"
  "CMakeFiles/sophon_codec.dir/sjpg.cc.o"
  "CMakeFiles/sophon_codec.dir/sjpg.cc.o.d"
  "libsophon_codec.a"
  "libsophon_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sophon_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
