file(REMOVE_RECURSE
  "libsophon_codec.a"
)
