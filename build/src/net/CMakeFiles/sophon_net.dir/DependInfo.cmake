
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/link.cc" "src/net/CMakeFiles/sophon_net.dir/link.cc.o" "gcc" "src/net/CMakeFiles/sophon_net.dir/link.cc.o.d"
  "/root/repo/src/net/rpc.cc" "src/net/CMakeFiles/sophon_net.dir/rpc.cc.o" "gcc" "src/net/CMakeFiles/sophon_net.dir/rpc.cc.o.d"
  "/root/repo/src/net/wire.cc" "src/net/CMakeFiles/sophon_net.dir/wire.cc.o" "gcc" "src/net/CMakeFiles/sophon_net.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sophon_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/sophon_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/sophon_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/sophon_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
