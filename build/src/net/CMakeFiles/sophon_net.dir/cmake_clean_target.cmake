file(REMOVE_RECURSE
  "libsophon_net.a"
)
