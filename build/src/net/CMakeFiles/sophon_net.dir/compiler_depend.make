# Empty compiler generated dependencies file for sophon_net.
# This may be replaced when dependencies are built.
