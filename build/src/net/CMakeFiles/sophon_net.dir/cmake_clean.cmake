file(REMOVE_RECURSE
  "CMakeFiles/sophon_net.dir/link.cc.o"
  "CMakeFiles/sophon_net.dir/link.cc.o.d"
  "CMakeFiles/sophon_net.dir/rpc.cc.o"
  "CMakeFiles/sophon_net.dir/rpc.cc.o.d"
  "CMakeFiles/sophon_net.dir/wire.cc.o"
  "CMakeFiles/sophon_net.dir/wire.cc.o.d"
  "libsophon_net.a"
  "libsophon_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sophon_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
