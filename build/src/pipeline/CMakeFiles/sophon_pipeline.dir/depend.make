# Empty dependencies file for sophon_pipeline.
# This may be replaced when dependencies are built.
