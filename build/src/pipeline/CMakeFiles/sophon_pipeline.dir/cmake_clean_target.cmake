file(REMOVE_RECURSE
  "libsophon_pipeline.a"
)
