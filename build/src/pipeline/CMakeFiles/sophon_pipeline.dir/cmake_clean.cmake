file(REMOVE_RECURSE
  "CMakeFiles/sophon_pipeline.dir/cost_model.cc.o"
  "CMakeFiles/sophon_pipeline.dir/cost_model.cc.o.d"
  "CMakeFiles/sophon_pipeline.dir/extra_ops.cc.o"
  "CMakeFiles/sophon_pipeline.dir/extra_ops.cc.o.d"
  "CMakeFiles/sophon_pipeline.dir/ops.cc.o"
  "CMakeFiles/sophon_pipeline.dir/ops.cc.o.d"
  "CMakeFiles/sophon_pipeline.dir/pipeline.cc.o"
  "CMakeFiles/sophon_pipeline.dir/pipeline.cc.o.d"
  "CMakeFiles/sophon_pipeline.dir/sample.cc.o"
  "CMakeFiles/sophon_pipeline.dir/sample.cc.o.d"
  "libsophon_pipeline.a"
  "libsophon_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sophon_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
