
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/cost_model.cc" "src/pipeline/CMakeFiles/sophon_pipeline.dir/cost_model.cc.o" "gcc" "src/pipeline/CMakeFiles/sophon_pipeline.dir/cost_model.cc.o.d"
  "/root/repo/src/pipeline/extra_ops.cc" "src/pipeline/CMakeFiles/sophon_pipeline.dir/extra_ops.cc.o" "gcc" "src/pipeline/CMakeFiles/sophon_pipeline.dir/extra_ops.cc.o.d"
  "/root/repo/src/pipeline/ops.cc" "src/pipeline/CMakeFiles/sophon_pipeline.dir/ops.cc.o" "gcc" "src/pipeline/CMakeFiles/sophon_pipeline.dir/ops.cc.o.d"
  "/root/repo/src/pipeline/pipeline.cc" "src/pipeline/CMakeFiles/sophon_pipeline.dir/pipeline.cc.o" "gcc" "src/pipeline/CMakeFiles/sophon_pipeline.dir/pipeline.cc.o.d"
  "/root/repo/src/pipeline/sample.cc" "src/pipeline/CMakeFiles/sophon_pipeline.dir/sample.cc.o" "gcc" "src/pipeline/CMakeFiles/sophon_pipeline.dir/sample.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sophon_util.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/sophon_image.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/sophon_codec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
