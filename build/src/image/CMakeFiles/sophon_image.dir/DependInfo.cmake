
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/image/color.cc" "src/image/CMakeFiles/sophon_image.dir/color.cc.o" "gcc" "src/image/CMakeFiles/sophon_image.dir/color.cc.o.d"
  "/root/repo/src/image/image.cc" "src/image/CMakeFiles/sophon_image.dir/image.cc.o" "gcc" "src/image/CMakeFiles/sophon_image.dir/image.cc.o.d"
  "/root/repo/src/image/ops.cc" "src/image/CMakeFiles/sophon_image.dir/ops.cc.o" "gcc" "src/image/CMakeFiles/sophon_image.dir/ops.cc.o.d"
  "/root/repo/src/image/tensor.cc" "src/image/CMakeFiles/sophon_image.dir/tensor.cc.o" "gcc" "src/image/CMakeFiles/sophon_image.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sophon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
