file(REMOVE_RECURSE
  "CMakeFiles/sophon_image.dir/color.cc.o"
  "CMakeFiles/sophon_image.dir/color.cc.o.d"
  "CMakeFiles/sophon_image.dir/image.cc.o"
  "CMakeFiles/sophon_image.dir/image.cc.o.d"
  "CMakeFiles/sophon_image.dir/ops.cc.o"
  "CMakeFiles/sophon_image.dir/ops.cc.o.d"
  "CMakeFiles/sophon_image.dir/tensor.cc.o"
  "CMakeFiles/sophon_image.dir/tensor.cc.o.d"
  "libsophon_image.a"
  "libsophon_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sophon_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
