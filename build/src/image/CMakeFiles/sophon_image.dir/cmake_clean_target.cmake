file(REMOVE_RECURSE
  "libsophon_image.a"
)
