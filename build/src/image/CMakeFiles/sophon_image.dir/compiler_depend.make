# Empty compiler generated dependencies file for sophon_image.
# This may be replaced when dependencies are built.
