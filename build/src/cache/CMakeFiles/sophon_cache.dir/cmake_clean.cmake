file(REMOVE_RECURSE
  "CMakeFiles/sophon_cache.dir/cached_training.cc.o"
  "CMakeFiles/sophon_cache.dir/cached_training.cc.o.d"
  "CMakeFiles/sophon_cache.dir/lru.cc.o"
  "CMakeFiles/sophon_cache.dir/lru.cc.o.d"
  "libsophon_cache.a"
  "libsophon_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sophon_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
