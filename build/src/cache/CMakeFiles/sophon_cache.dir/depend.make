# Empty dependencies file for sophon_cache.
# This may be replaced when dependencies are built.
