file(REMOVE_RECURSE
  "libsophon_cache.a"
)
