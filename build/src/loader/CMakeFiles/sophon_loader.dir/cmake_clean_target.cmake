file(REMOVE_RECURSE
  "libsophon_loader.a"
)
