# Empty dependencies file for sophon_loader.
# This may be replaced when dependencies are built.
