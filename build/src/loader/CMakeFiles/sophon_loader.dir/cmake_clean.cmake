file(REMOVE_RECURSE
  "CMakeFiles/sophon_loader.dir/loader.cc.o"
  "CMakeFiles/sophon_loader.dir/loader.cc.o.d"
  "libsophon_loader.a"
  "libsophon_loader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sophon_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
