file(REMOVE_RECURSE
  "CMakeFiles/full_training_run.dir/full_training_run.cpp.o"
  "CMakeFiles/full_training_run.dir/full_training_run.cpp.o.d"
  "full_training_run"
  "full_training_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_training_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
