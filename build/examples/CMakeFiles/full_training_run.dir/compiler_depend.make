# Empty compiler generated dependencies file for full_training_run.
# This may be replaced when dependencies are built.
