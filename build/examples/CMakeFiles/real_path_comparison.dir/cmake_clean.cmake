file(REMOVE_RECURSE
  "CMakeFiles/real_path_comparison.dir/real_path_comparison.cpp.o"
  "CMakeFiles/real_path_comparison.dir/real_path_comparison.cpp.o.d"
  "real_path_comparison"
  "real_path_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_path_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
