# Empty compiler generated dependencies file for real_path_comparison.
# This may be replaced when dependencies are built.
