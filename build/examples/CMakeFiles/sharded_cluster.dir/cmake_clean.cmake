file(REMOVE_RECURSE
  "CMakeFiles/sharded_cluster.dir/sharded_cluster.cpp.o"
  "CMakeFiles/sharded_cluster.dir/sharded_cluster.cpp.o.d"
  "sharded_cluster"
  "sharded_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
