file(REMOVE_RECURSE
  "CMakeFiles/calibrate_and_plan.dir/calibrate_and_plan.cpp.o"
  "CMakeFiles/calibrate_and_plan.dir/calibrate_and_plan.cpp.o.d"
  "calibrate_and_plan"
  "calibrate_and_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_and_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
