# Empty dependencies file for calibrate_and_plan.
# This may be replaced when dependencies are built.
